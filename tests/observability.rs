//! Integration tests for the `diam-obs` layer: span nesting and drain
//! ordering under threaded fan-out, JSONL schema round-tripping through the
//! real pipeline instrumentation, and the no-session zero-cost contract.
//!
//! Sessions are process-global; `Session::install` serializes concurrent
//! installs, so these tests are safe under the default parallel test
//! runner — each one holds the session for its own duration.

use diam::gen::random::{random_netlist, RandomDesignOptions};
use diam::obs::json::JsonValue;
use diam::obs::{self, json, EventKind, ObsConfig, ObsMode, RunManifest, Session};
use diam::par::{self, Parallelism};

fn json_session(tool: &str) -> Session {
    let config = ObsConfig {
        mode: ObsMode::Json,
        ..ObsConfig::default()
    };
    Session::install(config, RunManifest::capture(tool))
}

/// Worker-thread spans attach to the orchestrating span (ambient parent),
/// nest correctly inside their job span, and drain in global `seq` order.
#[test]
fn span_nesting_and_drain_order_under_threads() {
    let session = json_session("test-nesting");
    let outer_id;
    {
        let outer = obs::span!("test.outer", jobs = 8u64);
        outer_id = outer.id();
        par::run(
            Parallelism::Threads(3),
            (0..8u64).collect(),
            |_| 1,
            |i, job, _| {
                let mut sp = obs::span!("test.job", index = i, job = job);
                let inner = obs::span!("test.leaf");
                drop(inner);
                sp.record("done", true);
                job
            },
        );
    }
    let report = session.finish();

    // Drain order: strictly increasing global sequence numbers.
    for w in report.events.windows(2) {
        assert!(w[0].seq < w[1].seq, "events must drain in seq order");
    }

    // Collect parent links and worker tags.
    let mut job_spans = Vec::new();
    let mut leaf_parents = Vec::new();
    let mut opened = Vec::new();
    let mut closed = Vec::new();
    for e in &report.events {
        match &e.kind {
            EventKind::Open {
                span, parent, name, ..
            } => {
                opened.push(*span);
                match *name {
                    "test.job" => {
                        assert_eq!(
                            *parent, outer_id,
                            "job spans must attach to the orchestrating span"
                        );
                        assert!(
                            (1..=3).contains(&e.worker),
                            "job spans carry a worker tag, got {}",
                            e.worker
                        );
                        job_spans.push(*span);
                    }
                    "test.leaf" => leaf_parents.push(*parent),
                    "test.outer" => assert_eq!(*parent, 0, "outer span is a root"),
                    other => panic!("unexpected span {other}"),
                }
            }
            EventKind::Close { span, .. } => {
                assert!(
                    opened.contains(span),
                    "close of span {span} must come after its open"
                );
                closed.push(*span);
            }
            EventKind::Point { .. } => {}
        }
    }
    assert_eq!(job_spans.len(), 8, "one span per job");
    assert_eq!(leaf_parents.len(), 8, "one leaf per job");
    for p in &leaf_parents {
        assert!(job_spans.contains(p), "leaf spans nest inside job spans");
    }
    let mut o = opened.clone();
    let mut c = closed.clone();
    o.sort_unstable();
    c.sort_unstable();
    assert_eq!(o, c, "every opened span closes");
}

/// The real pipeline instrumentation round-trips through the JSONL format:
/// every line parses, carries the schema keys, and the per-target spans
/// carry the back-translation fields.
#[test]
fn jsonl_schema_round_trip() {
    use diam::core::{Pipeline, StructuralOptions};
    let n = random_netlist(&RandomDesignOptions::default(), 7);
    let session = json_session("test-jsonl");
    let pipe = Pipeline::com();
    let _ = pipe.bound_targets(&n, &StructuralOptions::default());
    let report = session.finish();
    let jsonl = report.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 3, "manifest + events + metrics");
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line ({e}): {line}"));
        assert!(v.is_object(), "line is an object: {line}");
        for key in ["ts", "span", "ev", "fields"] {
            assert!(v.get(key).is_some(), "line carries `{key}`: {line}");
        }
    }
    let first = json::parse(lines[0]).unwrap();
    assert_eq!(
        first.get("ev").and_then(JsonValue::as_str),
        Some("manifest")
    );
    assert_eq!(
        first
            .get("fields")
            .and_then(|f| f.get("tool"))
            .and_then(JsonValue::as_str),
        Some("test-jsonl")
    );
    let last = json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(last.get("ev").and_then(JsonValue::as_str), Some("metrics"));

    // Per-target spans carry the back-translation fields.
    let mut saw_target = false;
    for line in &lines {
        let v = json::parse(line).unwrap();
        if v.get("name").and_then(JsonValue::as_str) == Some("bound.target")
            && v.get("ev").and_then(JsonValue::as_str) == Some("close")
        {
            let f = v.get("fields").expect("fields");
            assert!(f.get("bt_add").is_some(), "bt_add on {line}");
            assert!(f.get("bt_mul").is_some(), "bt_mul on {line}");
            assert!(f.get("original").is_some(), "original on {line}");
            saw_target = true;
        }
    }
    assert!(saw_target, "at least one bound.target close span");
}

/// Transform passes share one `pass.apply` span schema: the close event
/// records before/after netlist statistics and pass-specific details, and
/// SAT work is attributed via the drop-time `sat_*` fields.
#[test]
fn transform_spans_carry_stats_deltas() {
    use diam::netlist::{Init, Netlist};
    use diam::transform::com::SweepOptions;
    use diam::transform::pass::{apply_traced, ComPass};
    // A lockstep pair: `r` and `s` are sequentially equivalent, which the
    // sweep can only discover through its SAT check — guaranteeing nonzero
    // `sat_*` attribution on the `pass.apply` span.
    let mut n = Netlist::new();
    let a = n.input("a");
    let r = n.reg("r", Init::Zero);
    let s = n.reg("s", Init::Zero);
    let nr = n.and(r.lit(), a.into());
    let ns = n.and(s.lit(), a.into());
    n.set_next(r, nr);
    n.set_next(s, ns);
    let t = n.and(r.lit(), !s.lit());
    n.add_target(t, "diverge");
    let session = json_session("test-deltas");
    let _ = apply_traced(&ComPass(SweepOptions::default()), &n);
    let report = session.finish();
    // The open event names the engine via the `pass` field.
    let open = report
        .events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Open { name, fields, .. } if *name == "pass.apply" => Some(fields.clone()),
            _ => None,
        })
        .expect("pass.apply open event");
    assert!(
        open.iter().any(|(name, _)| *name == "pass"),
        "pass.apply open carries `pass`: {open:?}"
    );
    let close = report
        .events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Close { name, fields, .. } if *name == "pass.apply" => Some(fields.clone()),
            _ => None,
        })
        .expect("pass.apply close event");
    let key = |k: &str| close.iter().any(|(name, _)| *name == k);
    for k in [
        "ok",
        "ands_before",
        "regs_before",
        "ands_after",
        "regs_after",
        "merges",
        "refinements",
        "sat_solves",
    ] {
        assert!(key(k), "pass.apply close carries `{k}`: {close:?}");
    }
}

/// Without a session installed nothing records, `enabled()` is false, and
/// span guards are free to construct and drop.
#[test]
fn no_session_is_inert() {
    // May race with another test's session only through `enabled()`; the
    // spans recorded here use names no assertion elsewhere counts, so both
    // interleavings are safe.
    let sp = obs::span!("test.inert", x = 1u64);
    drop(sp);
    obs::counter_add("test.inert_counter", 1);
    obs::event!("test.inert_event", y = 2u64);
}

/// The summary report reconciles: per-root-span totals never exceed the
/// session wall time, and the rendered summary names the phases.
#[test]
fn summary_reconciles_with_wall_time() {
    use diam::core::{Pipeline, StructuralOptions};
    let n = random_netlist(&RandomDesignOptions::default(), 3);
    let session = json_session("test-summary");
    let _ = Pipeline::com().bound_targets(&n, &StructuralOptions::default());
    let report = session.finish();
    assert!(report.manifest.wall_ns > 0);
    assert!(
        report.root_span_total_ns() <= report.manifest.wall_ns,
        "root span total {} exceeds wall {}",
        report.root_span_total_ns(),
        report.manifest.wall_ns
    );
    let summary = report.render_summary();
    assert!(summary.contains("pipeline.run"), "{summary}");
    assert!(summary.contains("bound.target"), "{summary}");
    assert!(summary.contains("per-phase breakdown"), "{summary}");
}

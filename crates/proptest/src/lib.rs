//! A vendored, std-only stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the proptest API its test-suites
//! actually use: [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], integer-range strategies, tuple composition,
//! [`collection::vec()`], the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and `prop_assert*`.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the generated value's
//!   `Debug` rendering (cases are small here, so minimization matters less);
//! * **deterministic seeding** — the RNG seed is derived from the test
//!   function's name (FNV-1a), so failures reproduce exactly across runs
//!   and machines;
//! * values are generated eagerly per case; there is no rejection /
//!   filtering machinery.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving generation (SplitMix64).

    /// A small, fast, deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is negligible for test generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// FNV-1a hash of a string, used to derive per-test seeds from names.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A fixed value (proptest's `Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u8..10, v in proptest::collection::vec(any::<u64>(), 1..=4)) {
///         prop_assert!(v.len() <= 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for __case in 0..config.cases {
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        let $arg = __value;
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_honor_size_range() {
        let mut rng = crate::test_runner::TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(any::<u64>(), 2..=5), &mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (any::<u64>(), 0u8..9).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::test_runner::TestRng::new(42);
        let mut r2 = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u8..16, v in crate::collection::vec(any::<bool>(), 1..=3)) {
            prop_assert!(x < 16);
            prop_assert!(!v.is_empty() && v.len() <= 3);
        }
    }
}

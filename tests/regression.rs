//! Regression tests for concrete bugs found during development.

use diam::core::exact::{explore, ExploreLimits};
use diam::core::{Bound, Pipeline, StructuralOptions};
use diam::netlist::{Init, Lit, Netlist};

/// Found by the soundness property tests: a functionally-toggling register
/// (hidden behind unsimplified logic) next to an input-fed register. The
/// original max-based parallel composition claimed d̂ = 2 after COM while
/// the earliest hit is at time 2 — parallel components need *serialized*
/// composition because their observable values must phase-align.
#[test]
fn parallel_toggle_needs_serialized_composition() {
    let mut n = Netlist::new();
    let i0 = n.input("i0").lit();
    let _i1 = n.input("i1").lit();
    let i2 = n.input("i2").lit();
    let r0 = n.reg("r0", Init::Zero);
    let r1 = n.reg("r1", Init::One);
    let r2 = n.reg("r2", Init::One);
    let lit = Lit::from_code;
    let g7 = n.and(lit(3), lit(11)); // !i0 ∧ !r1
    assert_eq!(g7, lit(14));
    let _g8 = n.and(lit(10), lit(14)); // r1 ∧ g7 ≡ 0 (hidden constant)
    let _g9 = n.and(lit(6), lit(9));
    let _g10 = n.and(lit(2), lit(10));
    let _g11 = n.and(lit(13), lit(17)); // ≡ !r2 once g8 ≡ 0 is known
    let _g12 = n.and(lit(12), lit(16)); // ≡ 0
    let _g13 = n.and(lit(23), lit(25));
    let g14 = n.and(lit(11), lit(12)); // target: !r1 ∧ r2
    let _g15 = n.and(lit(8), lit(27));
    let _g16 = n.and(lit(10), lit(16));
    let _g17 = n.and(lit(11), lit(17));
    let _g18 = n.and(lit(33), lit(35));
    let _g19 = n.and(lit(14), lit(28));
    let _g20 = n.and(lit(15), lit(29));
    let _g21 = n.and(lit(39), lit(41));
    n.set_next(r0, lit(27)); // ≡ !r2: r0 mirrors the toggle
    n.set_next(r1, i2);
    n.set_next(r2, lit(27)); // ≡ !r2: a functional toggle
    n.add_target(g14, "t");
    n.validate().unwrap();
    let _ = i0;

    let truth = explore(&n, &ExploreLimits::default()).unwrap();
    let hit = truth.earliest_hit[0].expect("reachable");
    assert_eq!(hit, 2);
    for (name, pipe) in [
        ("plain", Pipeline::new()),
        ("com", Pipeline::com()),
        ("com-ret-com", Pipeline::com_ret_com()),
    ] {
        let b = pipe.bound_targets(&n, &StructuralOptions::default());
        let Bound::Finite(v) = b[0].original else {
            continue;
        };
        assert!(hit < v, "{name}: bound {v} misses the hit at {hit}");
    }
}

/// Two antiphase-capable autonomous components: the joint valuation needs
/// both phases aligned, which `max` would undercount.
#[test]
fn two_toggles_with_different_inits() {
    let mut n = Netlist::new();
    let a = n.reg("a", Init::Zero);
    let b = n.reg("b", Init::One);
    n.set_next(a, !a.lit());
    n.set_next(b, !b.lit());
    // Joint (a, b) = (1, 1) never happens (antiphase); (1, 0) at odds.
    let t = n.and(a.lit(), !b.lit());
    n.add_target(t, "t");
    let truth = explore(&n, &ExploreLimits::default()).unwrap();
    let hit = truth.earliest_hit[0].expect("odd times");
    let bound = diam::core::diameter_bound(&n, t, &StructuralOptions::default()).bound;
    let Bound::Finite(v) = bound else { panic!() };
    assert!(hit < v, "bound {v} vs hit {hit}");
    // The serialized product 2 × 2 = 4.
    assert_eq!(v, 4);
}

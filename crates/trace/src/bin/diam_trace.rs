//! `diam-trace` — trace analytics CLI.
//!
//! ```text
//! diam-trace report <trace.jsonl> [--top K] [--json]
//! diam-trace critical-path <trace.jsonl> [--json]
//! diam-trace diff <base.jsonl> <new.jsonl> [--rel X] [--abs-floor-ms N]
//! diam-trace diff-baseline <base.json> <new.json> [--rel X] [--abs-floor-ms N]
//! diam-trace export <trace.jsonl> --format chrome|flamegraph [--out PATH]
//! diam-trace timeline <trace.jsonl> [--width N]
//! diam-trace history [<fingerprint>] [--last N] [--dir PATH] [--rel X] [--abs-floor-ms N]
//! diam-trace postmortem <crash.json>
//! ```
//!
//! Exit codes: `0` success / no regressions, `1` regressions found by a
//! diff (or drift found by `history`), `2` usage, I/O, or parse error
//! (including a crash dump that fails schema validation).

use diam_trace::{
    analyze, diff, export, history, postmortem, timeline, Baseline, DiffOptions, Trace,
};
use std::process::ExitCode;

const USAGE: &str = "usage: diam-trace <command> [args]

commands:
  report <trace.jsonl> [--top K] [--json]
      per-phase attribution, critical path, hotspots, per-depth SAT table
  critical-path <trace.jsonl> [--json]
      just the heaviest-child chain
  diff <base.jsonl> <new.jsonl> [--rel X] [--abs-floor-ms N]
      phase-wise comparison of two traces; exit 1 on regressions
  diff-baseline <base.json> <new.json> [--rel X] [--abs-floor-ms N]
      phase-wise comparison of two BENCH_*.json baselines; exit 1 on regressions
  export <trace.jsonl> --format chrome|flamegraph [--out PATH]
      convert a trace to Chrome trace-event JSON (Perfetto) or collapsed
      stacks; the export is verified against the span model before writing
  timeline <trace.jsonl> [--width N]
      per-worker busy/idle lanes (default width 60)
  history [<fingerprint>] [--last N] [--dir PATH] [--rel X] [--abs-floor-ms N]
      per-phase trends for stored runs of one workload; exit 1 on drift.
      without a fingerprint, lists stored fingerprints and run counts
  postmortem <crash.json>
      validate and render a crash dump written by the diam-obs panic hook
      (.diam/crash/<id>.json); exit 2 if the dump fails schema validation

options:
  --top K           hotspot count for `report` (default 10)
  --json            machine-readable output instead of text
  --rel X           regression ratio threshold (default 1.30)
  --abs-floor-ms N  ignore deltas smaller than N ms (default 20)
  --format F        export format: chrome or flamegraph
  --out PATH        write export to PATH instead of stdout
  --width N         timeline lane width in cells (default 60)
  --last N          history runs to show (default 10)
  --dir PATH        history store root (default .diam/history)
";

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("diam-trace: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_baseline(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Baseline::parse(&text).map_err(|e| format!("{path}: {e}"))
}

struct Flags {
    positional: Vec<String>,
    top: usize,
    json: bool,
    opts: DiffOptions,
    format: Option<String>,
    out: Option<String>,
    width: usize,
    last: usize,
    dir: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        top: 10,
        json: false,
        opts: DiffOptions::default(),
        format: None,
        out: None,
        width: 60,
        last: 10,
        dir: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => flags.json = true,
            "--top" => {
                let v = it.next().ok_or("--top requires a value")?;
                flags.top = v
                    .parse()
                    .map_err(|_| format!("invalid --top value `{v}`"))?;
            }
            "--rel" => {
                let v = it.next().ok_or("--rel requires a value")?;
                flags.opts.rel_threshold = v
                    .parse()
                    .map_err(|_| format!("invalid --rel value `{v}`"))?;
                if flags.opts.rel_threshold < 1.0 {
                    return Err(format!("--rel must be >= 1.0, got {v}"));
                }
            }
            "--abs-floor-ms" => {
                let v = it.next().ok_or("--abs-floor-ms requires a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --abs-floor-ms value `{v}`"))?;
                flags.opts.abs_floor_ns = ms * 1_000_000;
            }
            "--format" => {
                let v = it.next().ok_or("--format requires a value")?;
                match v.as_str() {
                    "chrome" | "flamegraph" => flags.format = Some(v.clone()),
                    other => {
                        return Err(format!(
                            "invalid --format value `{other}` (expected chrome|flamegraph)"
                        ))
                    }
                }
            }
            "--out" => {
                let v = it.next().ok_or("--out requires a value")?;
                flags.out = Some(v.clone());
            }
            "--width" => {
                let v = it.next().ok_or("--width requires a value")?;
                flags.width = v
                    .parse()
                    .map_err(|_| format!("invalid --width value `{v}`"))?;
            }
            "--last" => {
                let v = it.next().ok_or("--last requires a value")?;
                flags.last = v
                    .parse()
                    .map_err(|_| format!("invalid --last value `{v}`"))?;
                if flags.last == 0 {
                    return Err("--last must be >= 1".into());
                }
            }
            "--dir" => {
                let v = it.next().ok_or("--dir requires a value")?;
                flags.dir = Some(v.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn cmd_report(flags: &Flags) -> Result<ExitCode, String> {
    let [path] = flags.positional.as_slice() else {
        return Err("report takes exactly one trace file".into());
    };
    let trace = load_trace(path)?;
    if flags.json {
        println!("{}", analyze::report_to_json(&trace, flags.top));
    } else {
        print!("{}", analyze::render_report(&trace, flags.top));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_critical_path(flags: &Flags) -> Result<ExitCode, String> {
    let [path] = flags.positional.as_slice() else {
        return Err("critical-path takes exactly one trace file".into());
    };
    let trace = load_trace(path)?;
    let path_steps = analyze::critical_path(&trace);
    if flags.json {
        let mut out = String::from("[");
        for (i, s) in path_steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            diam_obs::json::write_escaped(&mut out, &s.name);
            out.push_str(",\"detail\":");
            diam_obs::json::write_escaped(&mut out, &s.detail);
            out.push_str(&format!(
                ",\"dur_ns\":{},\"self_ns\":{},\"worker\":{},\"share_of_parent\":{:.4}}}",
                s.dur_ns, s.self_ns, s.worker, s.share_of_parent
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        for (i, s) in path_steps.iter().enumerate() {
            let label = if s.detail.is_empty() {
                s.name.clone()
            } else {
                format!("{}({})", s.name, s.detail)
            };
            println!(
                "{}{label} {:.3}s (self {:.3}s, {:.1}% of parent, w{})",
                "  ".repeat(i),
                s.dur_ns as f64 / 1e9,
                s.self_ns as f64 / 1e9,
                100.0 * s.share_of_parent,
                s.worker
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn finish_diff(rows: &[diff::PhaseDiff], opts: &DiffOptions) -> ExitCode {
    print!("{}", diff::render_diff(rows, opts));
    if diff::has_regressions(rows) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_diff(flags: &Flags) -> Result<ExitCode, String> {
    let [base, new] = flags.positional.as_slice() else {
        return Err("diff takes exactly two trace files".into());
    };
    let base = load_trace(base)?;
    let new = load_trace(new)?;
    let rows = diff::diff_traces(&base, &new, &flags.opts);
    Ok(finish_diff(&rows, &flags.opts))
}

fn cmd_diff_baseline(flags: &Flags) -> Result<ExitCode, String> {
    let [base, new] = flags.positional.as_slice() else {
        return Err("diff-baseline takes exactly two BENCH_*.json files".into());
    };
    let base = load_baseline(base)?;
    let new = load_baseline(new)?;
    let rows = diff::diff_baselines(&base, &new, &flags.opts)?;
    Ok(finish_diff(&rows, &flags.opts))
}

fn cmd_export(flags: &Flags) -> Result<ExitCode, String> {
    let [path] = flags.positional.as_slice() else {
        return Err("export takes exactly one trace file".into());
    };
    let format = flags
        .format
        .as_deref()
        .ok_or("export requires --format chrome|flamegraph")?;
    let trace = load_trace(path)?;
    // Render, then verify the export against the span model before letting
    // it out the door — a broken exporter fails loudly, not in Perfetto.
    let (rendered, what) = match format {
        "chrome" => {
            let text = export::chrome_trace(&trace);
            let (complete, counters) = export::verify_chrome_trace(&trace, &text)?;
            (
                text,
                format!("chrome trace, {complete} span event(s), {counters} counter series"),
            )
        }
        "flamegraph" => {
            let text = export::flamegraph(&trace);
            let lines = export::verify_flamegraph(&trace, &text)?;
            (
                text,
                format!(
                    "collapsed stacks, {lines} line(s), total self {:.3}s",
                    export::total_self_ns(&trace) as f64 / 1e9
                ),
            )
        }
        _ => unreachable!("parse_flags validated --format"),
    };
    match &flags.out {
        Some(out) => {
            std::fs::write(out, &rendered).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("diam-trace: wrote {out} ({what})");
        }
        None => print!("{rendered}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_timeline(flags: &Flags) -> Result<ExitCode, String> {
    let [path] = flags.positional.as_slice() else {
        return Err("timeline takes exactly one trace file".into());
    };
    let trace = load_trace(path)?;
    print!("{}", timeline::render_timeline(&trace, flags.width));
    Ok(ExitCode::SUCCESS)
}

fn cmd_history(flags: &Flags) -> Result<ExitCode, String> {
    let store = match &flags.dir {
        Some(dir) => history::History::at(dir),
        None => history::History::default_root(),
    };
    match flags.positional.as_slice() {
        [] => {
            let fps = store.fingerprints()?;
            if fps.is_empty() {
                println!("history: no runs recorded under {}", store.root().display());
            } else {
                println!("history under {}:", store.root().display());
                for (fp, count) in fps {
                    println!("  {fp}  {count} run(s)");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        [fingerprint] => {
            let runs = store.runs(fingerprint)?;
            if runs.is_empty() {
                return Err(format!(
                    "no runs recorded for fingerprint {fingerprint} under {}",
                    store.root().display()
                ));
            }
            let (text, drifted) =
                history::render_trends(fingerprint, &runs, flags.last, &flags.opts);
            print!("{text}");
            Ok(if drifted {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        _ => Err("history takes at most one fingerprint".into()),
    }
}

fn cmd_postmortem(flags: &Flags) -> Result<ExitCode, String> {
    let [path] = flags.positional.as_slice() else {
        return Err("postmortem takes exactly one crash dump file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let dump = postmortem::CrashDump::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", postmortem::render_postmortem(&dump));
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage_err("missing command");
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => return usage_err(&e),
    };
    let result = match cmd.as_str() {
        "report" => cmd_report(&flags),
        "critical-path" => cmd_critical_path(&flags),
        "diff" => cmd_diff(&flags),
        "diff-baseline" => cmd_diff_baseline(&flags),
        "export" => cmd_export(&flags),
        "timeline" => cmd_timeline(&flags),
        "history" => cmd_history(&flags),
        "postmortem" => cmd_postmortem(&flags),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return usage_err(&format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("diam-trace: {e}");
            ExitCode::from(2)
        }
    }
}

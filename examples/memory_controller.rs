//! Memory components and target enlargement (Theorems 3 and 4 territory):
//! a small register-file write port with a valid-tracking FSM. Shows how
//! MC/QC classification keeps memory diameters linear in rows (not
//! exponential in bits), and how k-step target enlargement shifts a target
//! closer to the initial states.
//!
//! Run with: `cargo run --release --example memory_controller`

use diam::core::{diameter_bound, Pipeline, StructuralOptions};
use diam::gen::archetypes::register_file;
use diam::netlist::{Init, Netlist};
use diam::transform::enlarge::{enlarge, EnlargeOptions};

fn main() {
    // A 4-row × 4-bit register file plus a "row 3 written" sticky flag.
    let mut n = Netlist::new();
    let mem = register_file(&mut n, "rf", 4, 4);
    // Sticky flag: set once row 3 is addressed with write-enable.
    let row3_sel = {
        let a0 = mem.addr[0].lit();
        let a1 = mem.addr[1].lit();
        let sel = n.and(a0, a1);
        n.and(mem.we.lit(), sel)
    };
    let sticky = n.reg("row3_written", Init::Zero);
    let nx = n.or(sticky.lit(), row3_sel);
    n.set_next(sticky, nx);

    // Target: row 3 fully set to ones after having been written.
    let row3_bits: Vec<_> = mem.cells[3].iter().map(|r| r.lit()).collect();
    let row3_ones = n.and_many(row3_bits);
    let t = n.and(row3_ones, sticky.lit());
    n.add_target(t, "row3_all_ones");

    println!(
        "register file: {} cells + sticky flag = {} registers",
        mem.all_cells().len(),
        n.num_regs()
    );

    // 1. Classification: 16 memory cells (one 4-row memory) + 1 table-like
    //    sticky bit. The structural bound is linear in rows, not 2^17.
    let tb = diameter_bound(&n, t, &StructuralOptions::default());
    let counts = tb.classification.counts();
    println!(
        "classes in the target cone  CC;AC;MC+QC;GC = {counts}   (rows, not bits, bound the diameter)"
    );
    println!("structural diameter bound d̂ = {}", tb.bound);

    // 2. Target enlargement: the 2-step preimage characterizes states that
    //    reach the target in exactly 2 steps and no fewer; bounds computed
    //    for it back-translate as d̂ + 2 (Theorem 4).
    for k in 1..=3 {
        let e = enlarge(
            &n,
            0,
            &EnlargeOptions {
                k,
                ..Default::default()
            },
        )
        .expect("bdd stays small");
        let te = e.netlist.targets()[0].lit;
        let tbe = diameter_bound(&e.netlist, te, &StructuralOptions::default());
        println!(
            "k = {k}: enlarged-target bound d̂(t') = {:<6} ⇒ original within d̂(t') + {k} = {}",
            tbe.bound.to_string(),
            tbe.bound.add_const(u64::from(k))
        );
    }

    // 3. The full pipeline view.
    let bounds = Pipeline::com_ret_com().bound_targets(&n, &StructuralOptions::default());
    println!(
        "after COM,RET,COM: d̂ = {} (back-translated {})",
        bounds[0].transformed, bounds[0].original
    );
}

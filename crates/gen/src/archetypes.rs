//! Parameterized circuit archetypes — the structural species the component
//! classifier of \[7\] distinguishes, used to assemble profile-matched
//! benchmark designs.
//!
//! Every builder appends its logic to an existing [`Netlist`] and returns
//! handles to its observable signals, so a design is a composition of
//! archetype instances wired into targets.

use diam_netlist::sim::SplitMix64;
use diam_netlist::{Gate, Init, Lit, Netlist};

/// A pipeline: `depth` registers in series behind a fresh input.
/// All registers classify as **AC**; a target observing the tail has
/// structural bound `1 + depth`.
pub fn pipeline(n: &mut Netlist, name: &str, depth: usize) -> PipelineHandle {
    let input = n.input(format!("{name}_in"));
    let mut prev = input.lit();
    let mut regs = Vec::with_capacity(depth);
    for k in 0..depth {
        let r = n.reg(format!("{name}_s{k}"), Init::Zero);
        n.set_next(r, prev);
        prev = r.lit();
        regs.push(r);
    }
    PipelineHandle {
        input,
        regs,
        tail: prev,
    }
}

/// Handles to a [`pipeline`] instance.
#[derive(Debug, Clone)]
pub struct PipelineHandle {
    /// The driving input.
    pub input: Gate,
    /// The stage registers, front to back.
    pub regs: Vec<Gate>,
    /// The last stage's output (the input itself for depth 0).
    pub tail: Lit,
}

/// A pipeline fed by an arbitrary literal instead of a fresh input.
pub fn pipeline_from(n: &mut Netlist, name: &str, src: Lit, depth: usize) -> Vec<Gate> {
    let mut prev = src;
    let mut regs = Vec::with_capacity(depth);
    for k in 0..depth {
        let r = n.reg(format!("{name}_s{k}"), Init::Zero);
        n.set_next(r, prev);
        prev = r.lit();
        regs.push(r);
    }
    regs
}

/// A `bits`-bit binary up-counter with an enable. Each bit is a singleton
/// self-loop SCC that is *not* a hold/load mux, so the whole chain
/// classifies **GC** with a `2^bits` multiplicative contribution.
pub fn counter(n: &mut Netlist, name: &str, bits: usize, enable: Lit) -> CounterHandle {
    let regs: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("{name}_b{k}"), Init::Zero))
        .collect();
    let mut carry = enable;
    for &r in &regs {
        let nk = n.xor(r.lit(), carry);
        carry = n.and(r.lit(), carry);
        n.set_next(r, nk);
    }
    let bits_lits: Vec<Lit> = regs.iter().map(|r| r.lit()).collect();
    let all_ones = n.and_many(bits_lits.clone());
    CounterHandle {
        regs,
        bits: bits_lits,
        all_ones,
    }
}

/// Handles to a [`counter`] instance.
#[derive(Debug, Clone)]
pub struct CounterHandle {
    /// The state registers, LSB first.
    pub regs: Vec<Gate>,
    /// The state bits as literals.
    pub bits: Vec<Lit>,
    /// Conjunction of all bits.
    pub all_ones: Lit,
}

/// A Fibonacci LFSR driven (xored) by an external literal; a single
/// `bits`-register SCC → **GC**.
pub fn lfsr(n: &mut Netlist, name: &str, bits: usize, stir: Lit) -> Vec<Gate> {
    let regs: Vec<Gate> = (0..bits)
        .map(|k| {
            n.reg(
                format!("{name}_x{k}"),
                if k == 0 { Init::One } else { Init::Zero },
            )
        })
        .collect();
    // Feedback: taps at the last two stages (plus the stir bit).
    let fb0 = regs[bits - 1].lit();
    let fb = if bits >= 2 {
        let t = n.xor(fb0, regs[bits - 2].lit());
        n.xor(t, stir)
    } else {
        n.xor(fb0, stir)
    };
    n.set_next(regs[0], fb);
    for pair in regs.windows(2) {
        n.set_next(pair[1], pair[0].lit());
    }
    regs
}

/// A register file: `rows × width` hold/load cells with a shared write
/// port. All cells classify **MC**, clustered into one memory with `rows`
/// atomically-updated rows: the diameter contribution is `×(rows + 1)`
/// regardless of `width`.
pub fn register_file(n: &mut Netlist, name: &str, rows: usize, width: usize) -> MemoryHandle {
    assert!(rows >= 1, "memory needs at least one row");
    let addr_bits = rows.next_power_of_two().trailing_zeros().max(1) as usize;
    let we = n.input(format!("{name}_we"));
    let addr: Vec<Gate> = (0..addr_bits)
        .map(|k| n.input(format!("{name}_a{k}")))
        .collect();
    let data: Vec<Gate> = (0..width)
        .map(|k| n.input(format!("{name}_d{k}")))
        .collect();
    let mut cells = Vec::with_capacity(rows * width);
    for row in 0..rows {
        let sel_bits: Vec<Lit> = (0..addr_bits)
            .map(|k| addr[k].lit().xor_complement(row >> k & 1 == 0))
            .collect();
        let sel = n.and_many(sel_bits);
        let wr = n.and(we.lit(), sel);
        let mut row_cells = Vec::with_capacity(width);
        for (bit, d) in data.iter().enumerate() {
            let r = n.reg(format!("{name}_m{row}_{bit}"), Init::Zero);
            let nx = n.mux(wr, d.lit(), r.lit());
            n.set_next(r, nx);
            row_cells.push(r);
        }
        cells.push(row_cells);
    }
    MemoryHandle {
        we,
        addr,
        data,
        cells,
    }
}

/// Handles to a [`register_file`] instance.
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    /// Write enable input.
    pub we: Gate,
    /// Address inputs.
    pub addr: Vec<Gate>,
    /// Write data inputs.
    pub data: Vec<Gate>,
    /// Cell registers, `cells[row][bit]`.
    pub cells: Vec<Vec<Gate>>,
}

impl MemoryHandle {
    /// All cell registers flattened.
    pub fn all_cells(&self) -> Vec<Gate> {
        self.cells.iter().flatten().copied().collect()
    }
}

/// A FIFO-queue archetype: `depth` one-bit hold cells written one-hot by a
/// shifting valid token. The cells classify **MC/QC**; the token ring is a
/// small **GC**.
pub fn fifo(n: &mut Netlist, name: &str, depth: usize) -> FifoHandle {
    assert!(depth >= 2, "fifo needs depth >= 2");
    let push = n.input(format!("{name}_push"));
    let data = n.input(format!("{name}_data"));
    // One-hot write-pointer ring that advances on push.
    let token: Vec<Gate> = (0..depth)
        .map(|k| {
            n.reg(
                format!("{name}_t{k}"),
                if k == 0 { Init::One } else { Init::Zero },
            )
        })
        .collect();
    for k in 0..depth {
        let prev = token[(k + depth - 1) % depth].lit();
        let cur = token[k].lit();
        let nx = n.mux(push.lit(), prev, cur);
        n.set_next(token[k], nx);
    }
    // Cells: load data when the token points here and a push occurs.
    let cells: Vec<Gate> = (0..depth)
        .map(|k| {
            let r = n.reg(format!("{name}_q{k}"), Init::Zero);
            let wr = n.and(push.lit(), token[k].lit());
            let nx = n.mux(wr, data.lit(), r.lit());
            n.set_next(r, nx);
            r
        })
        .collect();
    FifoHandle {
        push,
        data,
        token,
        cells,
    }
}

/// Handles to a [`fifo`] instance.
#[derive(Debug, Clone)]
pub struct FifoHandle {
    /// Push input.
    pub push: Gate,
    /// Data input.
    pub data: Gate,
    /// Write-token ring registers (GC).
    pub token: Vec<Gate>,
    /// Queue cell registers (QC).
    pub cells: Vec<Gate>,
}

/// A random Mealy machine over `2^bits` states — a dense **GC** component.
pub fn random_fsm(n: &mut Netlist, name: &str, bits: usize, rng: &mut SplitMix64) -> Vec<Gate> {
    let input = n.input(format!("{name}_in"));
    let regs: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("{name}_f{k}"), Init::Zero))
        .collect();
    let mut pool: Vec<Lit> = regs.iter().map(|r| r.lit()).collect();
    pool.push(input.lit());
    for _ in 0..(3 * bits) {
        let a = pool[rng.below(pool.len() as u64) as usize];
        let b = pool[rng.below(pool.len() as u64) as usize];
        pool.push(match rng.below(3) {
            0 => n.and(a, b),
            1 => n.or(a, b),
            _ => n.xor(a, b),
        });
    }
    for (k, &r) in regs.iter().enumerate() {
        // Ensure genuine cyclic dependence: xor a pool pick with a rotated
        // register.
        let pick = pool[rng.below(pool.len() as u64) as usize];
        let other = regs[(k + 1) % bits].lit();
        let nx = n.xor(pick, other);
        n.set_next(r, nx);
    }
    regs
}

/// A Gray-code counter: like the binary counter a dense **GC** chain, but
/// with single-bit transitions — a different flavour of sequential depth
/// for the classifier and the exact-diameter oracle.
pub fn gray_counter(n: &mut Netlist, name: &str, bits: usize, enable: Lit) -> Vec<Gate> {
    // Implemented as binary counter + output XOR stage folded into the
    // next-state functions: g_k' = b_k' ⊕ b_{k+1}' over an internal binary
    // core is equivalent to keeping the binary core and reading it through
    // XORs; for a *registered* Gray counter we register the Gray value and
    // decode to binary internally.
    let regs: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("{name}_g{k}"), Init::Zero))
        .collect();
    // Decode Gray → binary: b_k = g_k ⊕ g_{k+1} ⊕ … (suffix parity).
    let mut binary = vec![Lit::FALSE; bits];
    let mut parity = Lit::FALSE;
    for k in (0..bits).rev() {
        parity = n.xor(parity, regs[k].lit());
        binary[k] = parity;
    }
    // Increment binary, re-encode: g_k' = b_k' ⊕ b_{k+1}'.
    let mut carry = enable;
    let mut next_binary = Vec::with_capacity(bits);
    for b in binary.iter().take(bits) {
        next_binary.push(n.xor(*b, carry));
        carry = n.and(*b, carry);
    }
    for k in 0..bits {
        let hi = if k + 1 < bits {
            next_binary[k + 1]
        } else {
            Lit::FALSE
        };
        let g_next = n.xor(next_binary[k], hi);
        n.set_next(regs[k], g_next);
    }
    regs
}

/// A one-hot token ring of length `len` that advances on `step` — a single
/// **GC** SCC whose reachable state count is `len` (not `2^len`), making it
/// a prime example of structural-bound pessimism on one-hot encodings.
pub fn token_ring(n: &mut Netlist, name: &str, len: usize, step: Lit) -> Vec<Gate> {
    assert!(len >= 2, "ring needs at least two positions");
    let regs: Vec<Gate> = (0..len)
        .map(|k| {
            n.reg(
                format!("{name}_t{k}"),
                if k == 0 { Init::One } else { Init::Zero },
            )
        })
        .collect();
    for k in 0..len {
        let prev = regs[(k + len - 1) % len].lit();
        let cur = regs[k].lit();
        let nx = n.mux(step, prev, cur);
        n.set_next(regs[k], nx);
    }
    regs
}

/// A Johnson (twisted-ring) counter: `bits` registers in a shift loop with
/// an inverted feedback tap — a single **GC** SCC whose reachable state
/// count is `2·bits` (not `2^bits`), another one-hot-flavoured example of
/// GC pessimism.
pub fn johnson_counter(n: &mut Netlist, name: &str, bits: usize, step: Lit) -> Vec<Gate> {
    assert!(bits >= 2, "johnson counter needs at least two bits");
    let regs: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("{name}_j{k}"), Init::Zero))
        .collect();
    // Shift with enable; feedback is the complement of the last stage.
    let fb = !regs[bits - 1].lit();
    let nx0 = n.mux(step, fb, regs[0].lit());
    n.set_next(regs[0], nx0);
    for k in 1..bits {
        let nx = n.mux(step, regs[k - 1].lit(), regs[k].lit());
        n.set_next(regs[k], nx);
    }
    regs
}

/// A round-robin arbiter over `clients` request lines: a token ring picks
/// the priority position; grants are combinational. Returns
/// `(ring, grants)` — the grants are mutually exclusive by construction,
/// which makes `grant_i ∧ grant_j` natural unreachable targets.
pub fn round_robin_arbiter(n: &mut Netlist, name: &str, clients: usize) -> (Vec<Gate>, Vec<Lit>) {
    let reqs: Vec<Lit> = (0..clients)
        .map(|k| n.input(format!("{name}_req{k}")).lit())
        .collect();
    let step = n.input(format!("{name}_step")).lit();
    let ring = token_ring(n, name, clients, step);
    // grant_i = req_i ∧ token_i (single-cycle fixed-priority-at-token).
    let grants: Vec<Lit> = (0..clients)
        .map(|k| n.and(reqs[k], ring[k].lit()))
        .collect();
    (ring, grants)
}

/// `count` registers stuck at constant values (half 0, half 1) behind
/// re-latching loops — the **CC** class.
pub fn constants(n: &mut Netlist, name: &str, count: usize) -> Vec<Gate> {
    (0..count)
        .map(|k| {
            let init = if k % 2 == 0 { Init::Zero } else { Init::One };
            let r = n.reg(format!("{name}_c{k}"), init);
            n.set_next(r, r.lit());
            r
        })
        .collect()
}

/// A structurally distinct duplicate of a counter: counts in lock-step with
/// `original` (same enable) but built through different gate structure, so
/// only sequential redundancy removal can merge the pair.
pub fn duplicate_counter(
    n: &mut Netlist,
    name: &str,
    bits: usize,
    enable: Lit,
) -> (CounterHandle, CounterHandle) {
    let a = counter(n, &format!("{name}_a"), bits, enable);
    // The duplicate computes the same increments via mux-structured logic.
    let regs: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("{name}_b_b{k}"), Init::Zero))
        .collect();
    let mut carry = enable;
    for &r in &regs {
        // x ⊕ c as mux(c, ¬x, x); carry as mux(c, x, 0).
        let nk = n.mux(carry, !r.lit(), r.lit());
        carry = n.mux(carry, r.lit(), Lit::FALSE);
        n.set_next(r, nk);
    }
    let bits_lits: Vec<Lit> = regs.iter().map(|r| r.lit()).collect();
    let all_ones = n.and_many(bits_lits.clone());
    let b = CounterHandle {
        regs,
        bits: bits_lits,
        all_ones,
    };
    (a, b)
}

/// A large input-stirred rotating ring — a `bits`-register SCC whose
/// exponential GC bound makes any observing target practically unboundable.
pub fn big_ring(n: &mut Netlist, name: &str, bits: usize, rng: &mut SplitMix64) -> Vec<Gate> {
    let stir = n.input(format!("{name}_stir"));
    let regs: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("{name}_r{k}"), Init::Zero))
        .collect();
    for k in 0..bits {
        let prev = regs[(k + bits - 1) % bits].lit();
        let nx = if k == 0 {
            let t = n.xor(prev, stir.lit());
            !t
        } else if rng.below(4) == 0 {
            n.xor(prev, regs[(k + bits / 2) % bits].lit())
        } else {
            prev
        };
        n.set_next(regs[k], nx);
    }
    regs
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math here
mod tests {
    use super::*;
    use diam_core::classify::{classify, ClassifyOptions, RegClass};
    use diam_core::structural::{diameter_bound, StructuralOptions};
    use diam_core::Bound;

    #[test]
    fn pipeline_classifies_acyclic() {
        let mut n = Netlist::new();
        let p = pipeline(&mut n, "p", 5);
        n.add_target(p.tail, "t");
        let c = classify(&n, &p.regs, &ClassifyOptions::default());
        assert!(p.regs.iter().all(|r| c.class_of[r] == RegClass::Acyclic));
        let b = diameter_bound(&n, p.tail, &StructuralOptions::default());
        assert_eq!(b.bound, Bound::Finite(6));
    }

    #[test]
    fn counter_classifies_general() {
        let mut n = Netlist::new();
        let c = counter(&mut n, "c", 4, Lit::TRUE);
        n.add_target(c.all_ones, "t");
        let cl = classify(&n, &c.regs, &ClassifyOptions::default());
        assert!(c.regs.iter().all(|r| cl.class_of[r] == RegClass::General));
        let b = diameter_bound(&n, c.all_ones, &StructuralOptions::default());
        assert_eq!(b.bound, Bound::Finite(16));
    }

    #[test]
    fn register_file_classifies_table() {
        let mut n = Netlist::new();
        let m = register_file(&mut n, "m", 4, 2);
        let t = n.and(m.cells[0][0].lit(), m.cells[3][1].lit());
        n.add_target(t, "t");
        let cells = m.all_cells();
        let cl = classify(&n, &cells, &ClassifyOptions::default());
        assert!(cells.iter().all(|r| cl.class_of[r] == RegClass::Table));
        // The target observes cells of two rows only; cone-of-influence
        // restriction shrinks the memory to those rows: ×(2 + 1).
        let b = diameter_bound(&n, t, &StructuralOptions::default());
        assert_eq!(b.bound, Bound::Finite(3));
        // A target over all four rows sees the full ×(4 + 1) factor.
        let mut n2 = Netlist::new();
        let m2 = register_file(&mut n2, "m", 4, 2);
        let all: Vec<_> = m2.all_cells().iter().map(|r| r.lit()).collect();
        let t2 = n2.and_many(all);
        n2.add_target(t2, "t");
        let b2 = diameter_bound(&n2, t2, &StructuralOptions::default());
        assert_eq!(b2.bound, Bound::Finite(5));
    }

    #[test]
    fn fifo_mixes_table_and_general() {
        let mut n = Netlist::new();
        let f = fifo(&mut n, "q", 4);
        let t = n.and(f.cells[0].lit(), f.cells[3].lit());
        n.add_target(t, "t");
        let mut regs = f.token.clone();
        regs.extend(&f.cells);
        let cl = classify(&n, &regs, &ClassifyOptions::default());
        let counts = cl.counts();
        assert_eq!(counts.table, 4, "queue cells");
        assert_eq!(counts.general, 4, "token ring");
    }

    #[test]
    fn constants_classify_constant() {
        let mut n = Netlist::new();
        let cs = constants(&mut n, "k", 6);
        let i = n.input("i");
        let t = n.and(cs[1].lit(), i.lit());
        n.add_target(t, "t");
        let cl = classify(&n, &cs, &ClassifyOptions::default());
        assert_eq!(cl.counts().constant, 6);
    }

    #[test]
    fn duplicate_counters_agree() {
        use diam_netlist::sim::{simulate, Stimulus};
        let mut n = Netlist::new();
        let en = n.input("en");
        let (a, b) = duplicate_counter(&mut n, "d", 3, en.lit());
        let differ = {
            let d0 = n.xor(a.bits[0], b.bits[0]);
            let d1 = n.xor(a.bits[1], b.bits[1]);
            let d2 = n.xor(a.bits[2], b.bits[2]);
            let x = n.or(d0, d1);
            n.or(x, d2)
        };
        n.add_target(differ, "differ");
        let mut rng = SplitMix64::new(3);
        let stim = Stimulus::random(&n, 20, &mut rng);
        let tr = simulate(&n, &stim);
        for t in 0..20 {
            assert_eq!(tr.word(differ, t), 0, "counters diverge at {t}");
        }
    }

    #[test]
    fn big_ring_is_one_scc() {
        let mut n = Netlist::new();
        let mut rng = SplitMix64::new(1);
        let regs = big_ring(&mut n, "r", 12, &mut rng);
        n.add_target(regs[0].lit(), "t");
        let cl = classify(&n, &regs, &ClassifyOptions::default());
        assert_eq!(cl.counts().general, 12);
        let b = diameter_bound(&n, regs[0].lit(), &StructuralOptions::default());
        assert_eq!(b.bound, Bound::Finite(4096));
    }

    #[test]
    fn gray_counter_steps_one_bit_at_a_time() {
        use diam_netlist::sim::{simulate, Stimulus};
        let mut n = Netlist::new();
        let regs = gray_counter(&mut n, "g", 4, Lit::TRUE);
        n.add_target(regs[0].lit(), "t");
        let tr = simulate(&n, &Stimulus::zeros(&n, 17));
        let value = |t: usize| -> u32 {
            (0..4)
                .map(|k| u32::from(tr.value(regs[k].lit(), t, 0)) << k)
                .sum()
        };
        let mut seen = std::collections::HashSet::new();
        for t in 0..16 {
            let (a, b) = (value(t), value(t + 1));
            assert_eq!(
                (a ^ b).count_ones(),
                1,
                "gray step at {t}: {a:04b}->{b:04b}"
            );
            seen.insert(a);
        }
        assert_eq!(seen.len(), 16, "full gray cycle");
    }

    #[test]
    fn token_ring_rotates_and_explores_len_states() {
        use diam_core::exact::{state_diameter, ExploreLimits};
        let mut n = Netlist::new();
        let step = n.input("step");
        let ring = token_ring(&mut n, "r", 5, step.lit());
        n.add_target(ring[4].lit(), "t");
        let d = state_diameter(&n, &ExploreLimits::default()).unwrap();
        assert_eq!(d.reachable_states, 5, "one-hot: len states, not 2^len");
        assert_eq!(d.pairwise, 5, "full rotation");
        // The structural GC bound is 2^5: sound but pessimistic — exactly
        // the one-hot pessimism the paper attributes to GC components.
        let b = diameter_bound(&n, ring[4].lit(), &StructuralOptions::default());
        assert_eq!(b.bound, diam_core::Bound::Finite(32));
    }

    #[test]
    fn johnson_counter_visits_2n_states() {
        use diam_core::exact::{state_diameter, ExploreLimits};
        let mut n = Netlist::new();
        let regs = johnson_counter(&mut n, "j", 4, Lit::TRUE);
        n.add_target(regs[3].lit(), "t");
        let d = state_diameter(&n, &ExploreLimits::default()).unwrap();
        assert_eq!(d.reachable_states, 8, "2·bits states");
        assert_eq!(d.pairwise, 8, "full twisted ring");
        let cl = classify(&n, &regs, &ClassifyOptions::default());
        assert_eq!(cl.counts().general, 4);
    }

    #[test]
    fn arbiter_grants_are_mutually_exclusive() {
        use diam_bmc::{prove, ProveOptions, ProveOutcome};
        let mut n = Netlist::new();
        let (_, grants) = round_robin_arbiter(&mut n, "arb", 4);
        let both = n.and(grants[0], grants[2]);
        n.add_target(both, "double_grant");
        match prove(
            &n,
            0,
            &diam_core::Pipeline::com(),
            &ProveOptions {
                depth_cap: 64,
                ..Default::default()
            },
        ) {
            ProveOutcome::Proved { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn lfsr_is_general() {
        let mut n = Netlist::new();
        let stir = n.input("stir");
        let regs = lfsr(&mut n, "l", 5, stir.lit());
        n.add_target(regs[4].lit(), "t");
        let cl = classify(&n, &regs, &ClassifyOptions::default());
        assert_eq!(cl.counts().general, 5);
    }
}

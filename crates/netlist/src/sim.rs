//! Cycle-accurate netlist simulation — the executable form of the trace
//! semantics of Definition 2.
//!
//! Simulation is bit-parallel: every gate value is a 64-bit word, so one pass
//! evaluates 64 independent traces. This is what the redundancy-removal
//! engine uses to generate equivalence candidates, and what the test suite
//! uses to check that transformations preserve trace equivalence.
//!
//! Propagation order runs off the CSR AND plan ([`Csr::and_plan`]): after
//! time 0 the registers are latched from the previous row first, so a
//! **single** topological AND sweep per step settles the whole netlist. Only
//! time 0 needs a preliminary sweep, to evaluate the (input-only, validated)
//! `Init::Fn` reset cones before the registers are initialized.
//!
//! [`Csr::and_plan`]: crate::csr::Csr::and_plan

use crate::csr::AndStep;
use crate::{Init, Lit, Netlist};

/// A deterministic splittable PRNG (SplitMix64), kept local so the netlist
/// crate stays free of external RNG dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 != 0
    }
}

/// Input stimulus for a bounded simulation run.
///
/// `inputs[t][k]` is the 64-trace word driven onto the `k`-th primary input
/// (in [`Netlist::inputs`] order) at time `t`. `nondet_init[j]` is the word
/// used as the initial value of the `j`-th register (in [`Netlist::regs`]
/// order) when that register's init is [`Init::Nondet`]; entries for other
/// registers are ignored.
#[derive(Debug, Clone)]
pub struct Stimulus {
    /// Per-time-step, per-input words.
    pub inputs: Vec<Vec<u64>>,
    /// Per-register nondeterministic initial-value words.
    pub nondet_init: Vec<u64>,
}

impl Stimulus {
    /// Uniformly random stimulus for `n` over `steps` time-steps.
    pub fn random(n: &Netlist, steps: usize, rng: &mut SplitMix64) -> Stimulus {
        Stimulus {
            inputs: (0..steps)
                .map(|_| (0..n.num_inputs()).map(|_| rng.next_u64()).collect())
                .collect(),
            nondet_init: (0..n.num_regs()).map(|_| rng.next_u64()).collect(),
        }
    }

    /// All-zero stimulus (useful for deterministic replay tests).
    pub fn zeros(n: &Netlist, steps: usize) -> Stimulus {
        Stimulus {
            inputs: vec![vec![0; n.num_inputs()]; steps],
            nondet_init: vec![0; n.num_regs()],
        }
    }

    /// Number of simulated time-steps.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the stimulus covers zero time-steps.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// The result of a simulation: 64 parallel traces of gate valuations.
#[derive(Debug, Clone)]
pub struct Trace {
    values: Vec<Vec<u64>>,
}

impl Trace {
    /// The 64-trace word of literal `l` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is beyond the simulated horizon.
    #[inline]
    pub fn word(&self, l: Lit, t: usize) -> u64 {
        let v = self.values[t][l.gate().index()];
        if l.is_complement() {
            !v
        } else {
            v
        }
    }

    /// The boolean value of literal `l` at time `t` in parallel trace `k`
    /// (`k < 64`).
    #[inline]
    pub fn value(&self, l: Lit, t: usize, k: usize) -> bool {
        debug_assert!(k < 64);
        (self.word(l, t) >> k) & 1 != 0
    }

    /// Number of simulated time-steps.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the trace covers zero time-steps.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Simulates `n` under `stimulus`, producing 64 parallel traces.
///
/// At time 0, register initial values are applied; `Init::Fn` cones are
/// evaluated over the time-0 input values (they are guaranteed combinational
/// by [`Netlist::validate`]).
///
/// # Panics
///
/// Panics if the stimulus width does not match the netlist's input or
/// register count.
pub fn simulate(n: &Netlist, stimulus: &Stimulus) -> Trace {
    assert_eq!(
        stimulus.nondet_init.len(),
        n.num_regs(),
        "stimulus register width mismatch"
    );
    let csr = n.csr();
    let plan = csr.and_plan();
    let steps = stimulus.len();
    let mut values: Vec<Vec<u64>> = Vec::with_capacity(steps);

    for t in 0..steps {
        assert_eq!(
            stimulus.inputs[t].len(),
            n.num_inputs(),
            "stimulus input width mismatch at step {t}"
        );
        let mut row = vec![0u64; n.num_gates()];
        for (k, &i) in n.inputs().iter().enumerate() {
            row[i.index()] = stimulus.inputs[t][k];
        }
        if t == 0 {
            // Preliminary AND sweep so `Init::Fn` reset cones (input-only,
            // guaranteed by validation) are available to the registers.
            sweep_ands(plan, &mut row);
            for (j, &r) in n.regs().iter().enumerate() {
                row[r.index()] = match n.reg_init(r) {
                    Init::Zero => 0,
                    Init::One => !0,
                    Init::Nondet => stimulus.nondet_init[j],
                    Init::Fn(l) => eval_lit(&row, l),
                };
            }
        } else {
            // Latch registers from the previous row before the AND sweep:
            // with inputs and registers settled, one topological pass
            // settles every AND.
            let prev = &values[t - 1];
            for &r in n.regs() {
                row[r.index()] = eval_lit(prev, n.reg_next(r));
            }
        }
        sweep_ands(plan, &mut row);
        values.push(row);
    }
    Trace { values }
}

/// One topological pass over the flat AND plan.
#[inline]
fn sweep_ands(plan: &[AndStep], row: &mut [u64]) {
    for step in plan {
        row[step.gate as usize] = eval_code(row, step.a) & eval_code(row, step.b);
    }
}

#[inline]
fn eval_code(row: &[u64], code: u32) -> u64 {
    let v = row[(code >> 1) as usize];
    if code & 1 != 0 {
        !v
    } else {
        v
    }
}

#[inline]
fn eval_lit(row: &[u64], l: Lit) -> u64 {
    eval_code(row, l.code())
}

/// Evaluates one combinational frame: given 64-trace words for every
/// register (by register position) and every input (by input position),
/// returns the words of all gates.
///
/// Unlike [`simulate`] this does not apply initial values or next-state
/// functions — registers take exactly the provided values — which makes it
/// the right tool for evaluating SAT models of *free-state* queries (e.g.
/// inductive steps in the redundancy-removal engine).
///
/// # Panics
///
/// Panics if the slices do not match the register/input counts.
pub fn eval_frame(n: &Netlist, reg_vals: &[u64], input_vals: &[u64]) -> Vec<u64> {
    assert_eq!(reg_vals.len(), n.num_regs(), "register width mismatch");
    assert_eq!(input_vals.len(), n.num_inputs(), "input width mismatch");
    let mut row = vec![0u64; n.num_gates()];
    for (j, &r) in n.regs().iter().enumerate() {
        row[r.index()] = reg_vals[j];
    }
    for (k, &i) in n.inputs().iter().enumerate() {
        row[i.index()] = input_vals[k];
    }
    sweep_ands(n.csr().and_plan(), &mut row);
    row
}

/// The next-state words implied by a frame valuation (see [`eval_frame`]):
/// element `j` is the value register `j` would take in the following step.
pub fn next_state(n: &Netlist, frame: &[u64]) -> Vec<u64> {
    n.regs()
        .iter()
        .map(|&r| eval_lit(frame, n.reg_next(r)))
        .collect()
}

/// A single concrete counterexample trace: one boolean assignment per input
/// per time-step (plus nondeterministic register initializations), as
/// produced by BMC and consumed by replay validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// `inputs[t][k]` = value of input `k` at time `t`.
    pub inputs: Vec<Vec<bool>>,
    /// Chosen initial values for `Init::Nondet` registers (by register
    /// position; ignored for others).
    pub nondet_init: Vec<bool>,
}

impl Witness {
    /// Converts the witness into a 64-trace stimulus that replicates it in
    /// every parallel trace.
    pub fn to_stimulus(&self) -> Stimulus {
        Stimulus {
            inputs: self
                .inputs
                .iter()
                .map(|row| row.iter().map(|&b| if b { !0u64 } else { 0u64 }).collect())
                .collect(),
            nondet_init: self
                .nondet_init
                .iter()
                .map(|&b| if b { !0u64 } else { 0u64 })
                .collect(),
        }
    }

    /// Replays the witness on `n` and returns the value of `lit` at the final
    /// simulated time-step — the standard way to validate a counterexample.
    pub fn replays_to(&self, n: &Netlist, lit: Lit) -> bool {
        let trace = simulate(n, &self.to_stimulus());
        if trace.is_empty() {
            return false;
        }
        trace.value(lit, trace.len() - 1, 0)
    }
}

/// Writes a [`Witness`] as a Value Change Dump (VCD) for waveform viewers:
/// the witness is replayed on the simulator and the inputs, registers, and
/// targets are dumped per time-step.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_vcd<W: std::io::Write>(
    n: &Netlist,
    witness: &Witness,
    mut w: W,
) -> std::io::Result<()> {
    let trace = simulate(n, &witness.to_stimulus());
    writeln!(w, "$version diam-netlist $end")?;
    writeln!(w, "$timescale 1ns $end")?;
    writeln!(w, "$scope module netlist $end")?;
    // VCD identifier codes: printable ASCII starting at '!'.
    let code = |k: usize| -> String {
        let mut k = k;
        let mut s = String::new();
        loop {
            s.push((b'!' + (k % 94) as u8) as char);
            k /= 94;
            if k == 0 {
                break s;
            }
        }
    };
    let mut signals: Vec<(String, crate::Lit)> = Vec::new();
    for &g in n.inputs() {
        signals.push((n.name(g).unwrap_or("in").to_string(), g.lit()));
    }
    for &g in n.regs() {
        signals.push((n.name(g).unwrap_or("reg").to_string(), g.lit()));
    }
    for t in n.targets() {
        signals.push((format!("target_{}", t.name), t.lit));
    }
    for (k, (name, _)) in signals.iter().enumerate() {
        let sanitized: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        writeln!(w, "$var wire 1 {} {sanitized} $end", code(k))?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;
    let mut last: Vec<Option<bool>> = vec![None; signals.len()];
    for t in 0..trace.len() {
        writeln!(w, "#{t}")?;
        for (k, (_, lit)) in signals.iter().enumerate() {
            let v = trace.value(*lit, t, 0);
            if last[k] != Some(v) {
                writeln!(w, "{}{}", u8::from(v), code(k))?;
                last[k] = Some(v);
            }
        }
    }
    writeln!(w, "#{}", trace.len())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, Netlist};

    #[test]
    fn toggle_register_alternates() {
        let mut n = Netlist::new();
        let r = n.reg("t", Init::Zero);
        n.set_next(r, !r.lit());
        let trace = simulate(&n, &Stimulus::zeros(&n, 4));
        assert!(!trace.value(r.lit(), 0, 0));
        assert!(trace.value(r.lit(), 1, 0));
        assert!(!trace.value(r.lit(), 2, 0));
        assert!(trace.value(r.lit(), 3, 0));
    }

    #[test]
    fn and_gate_combines_inputs() {
        let mut n = Netlist::new();
        let a = n.input("a").lit();
        let b = n.input("b").lit();
        let x = n.and(a, b);
        let stim = Stimulus {
            inputs: vec![vec![0b1100, 0b1010]],
            nondet_init: vec![],
        };
        let trace = simulate(&n, &stim);
        assert_eq!(trace.word(x, 0) & 0b1111, 0b1000);
        assert_eq!(trace.word(!x, 0) & 0b1111, 0b0111);
    }

    #[test]
    fn init_one_and_nondet() {
        let mut n = Netlist::new();
        let r1 = n.reg("one", Init::One);
        let rn = n.reg("free", Init::Nondet);
        n.set_next(r1, r1.lit());
        n.set_next(rn, rn.lit());
        let stim = Stimulus {
            inputs: vec![vec![], vec![]],
            nondet_init: vec![0, 0b101],
        };
        let trace = simulate(&n, &stim);
        assert_eq!(trace.word(r1.lit(), 0), !0);
        assert_eq!(trace.word(rn.lit(), 0), 0b101);
        assert_eq!(trace.word(rn.lit(), 1), 0b101);
    }

    #[test]
    fn fn_init_evaluates_time_zero_inputs() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let r = n.reg("r", Init::Fn(!i.lit()));
        n.set_next(r, r.lit());
        let stim = Stimulus {
            inputs: vec![vec![0b01], vec![0b11]],
            nondet_init: vec![0],
        };
        let trace = simulate(&n, &stim);
        // Initial value is the complement of i at time 0 and then held.
        assert_eq!(trace.word(r.lit(), 0) & 0b11, 0b10);
        assert_eq!(trace.word(r.lit(), 1) & 0b11, 0b10);
    }

    #[test]
    fn pipeline_delays_input() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let r0 = n.reg("r0", Init::Zero);
        let r1 = n.reg("r1", Init::Zero);
        n.set_next(r0, i.lit());
        n.set_next(r1, r0.lit());
        let stim = Stimulus {
            inputs: vec![vec![1], vec![0], vec![0], vec![0]],
            nondet_init: vec![0, 0],
        };
        let trace = simulate(&n, &stim);
        assert!(trace.value(r0.lit(), 1, 0));
        assert!(trace.value(r1.lit(), 2, 0));
        assert!(!trace.value(r1.lit(), 3, 0));
    }

    #[test]
    fn witness_replay() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let r = n.reg("r", Init::Zero);
        n.set_next(r, i.lit());
        let w = Witness {
            inputs: vec![vec![true], vec![false]],
            nondet_init: vec![false],
        };
        assert!(w.replays_to(&n, r.lit()));
        assert!(!w.replays_to(&n, !r.lit()));
    }

    #[test]
    fn vcd_export_is_well_formed() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let r = n.reg("r", Init::Zero);
        n.set_next(r, i.lit());
        n.add_target(r.lit(), "t");
        let w = Witness {
            inputs: vec![vec![true], vec![false], vec![true]],
            nondet_init: vec![false],
        };
        let mut buf = Vec::new();
        write_vcd(&n, &w, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("$var wire 1 ! i $end"));
        assert!(text.contains("target_t"));
        // Time 0: i = 1, r = 0; time 1: i = 0, r = 1 — the register change
        // must appear under #1.
        let after_t1 = text.split("#1\n").nth(1).expect("timestep 1");
        assert!(after_t1.contains("1\""), "register rises at time 1: {text}");
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Differential soundness of the cube-and-conquer BMC layer (`diam::bmc::cube`).
//!
//! The contract under test (see `DESIGN.md`, "Cube-and-conquer"): splitting a
//! depth obligation into assumption cubes — with or without clause sharing,
//! sibling cancellation, and portfolio jitter — never changes a verdict. On
//! random multi-target designs, every cube mode × parallelism combination
//! must agree with the plain monolithic sweep on hit depths, and every
//! returned witness must replay on the original netlist. Reproducible mode
//! is held to the stronger bar: bit-identical outcomes (witness included)
//! across thread counts.

use diam::bmc::{check, check_all, BmcOptions, BmcOutcome, CubeMode, CubeOptions};
use diam::gen::random::{random_netlist, RandomDesignOptions};
use diam::netlist::{Gate, Init, Lit, Netlist};
use diam::par::Parallelism;

/// Seeded multi-target designs (deterministic per seed).
fn designs() -> Vec<Netlist> {
    let opts = RandomDesignOptions {
        inputs: 3,
        regs: 6,
        gates: 16,
        targets: 3,
        allow_nondet: true,
    };
    (0..16u64)
        .map(|seed| random_netlist(&opts, 0xC0BE + seed))
        .collect()
}

fn cube_opts(mode: CubeMode) -> CubeOptions {
    CubeOptions {
        mode,
        vars: 2,
        // Split early so shallow random designs still exercise the layer.
        min_depth: 1,
    }
}

/// Hit depths and no-hit bounds must match outcome-for-outcome; cube-path
/// witnesses must replay (they may legitimately differ from the monolithic
/// witness in fast mode).
fn assert_verdicts_match(n: &Netlist, plain: &[BmcOutcome], cubed: &[BmcOutcome], ctx: &str) {
    assert_eq!(plain.len(), cubed.len(), "{ctx}");
    for (i, (a, b)) in plain.iter().zip(cubed).enumerate() {
        match (a, b) {
            (
                BmcOutcome::Counterexample { depth: x, .. },
                BmcOutcome::Counterexample { depth: y, witness },
            ) => {
                assert_eq!(x, y, "{ctx}: target {i} hit depth");
                assert!(
                    witness.replays_to(n, n.targets()[i].lit),
                    "{ctx}: target {i} cube witness does not replay"
                );
            }
            (BmcOutcome::NoHitUpTo(x), BmcOutcome::NoHitUpTo(y)) => {
                assert_eq!(x, y, "{ctx}: target {i} clean bound")
            }
            other => panic!("{ctx}: target {i} outcome mismatch {other:?}"),
        }
    }
}

#[test]
fn cube_modes_agree_with_monolithic_on_random_designs() {
    for (k, n) in designs().iter().enumerate() {
        let plain = check_all(
            n,
            &BmcOptions {
                max_depth: 10,
                ..Default::default()
            },
        );
        for mode in [CubeMode::Reproducible, CubeMode::Fast] {
            for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
                let cubed = check_all(
                    n,
                    &BmcOptions {
                        max_depth: 10,
                        parallelism: par,
                        cube: cube_opts(mode),
                        ..Default::default()
                    },
                );
                assert_verdicts_match(n, &plain, &cubed, &format!("design {k}, {mode}, {par}"));
            }
        }
    }
}

/// A `bits`-wide counter with a target hit exactly when it reaches `value`.
fn counter(bits: usize, value: u64) -> Netlist {
    let mut n = Netlist::new();
    let b: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("b{k}"), Init::Zero))
        .collect();
    let mut carry = Lit::TRUE;
    for &bk in &b {
        let nk = n.xor(bk.lit(), carry);
        carry = n.and(bk.lit(), carry);
        n.set_next(bk, nk);
    }
    let lits: Vec<Lit> = (0..bits)
        .map(|k| b[k].lit().xor_complement(value >> k & 1 == 0))
        .collect();
    let t = n.and_many(lits);
    n.add_target(t, format!("value_is_{value}"));
    n
}

#[test]
fn reproducible_mode_is_bit_identical_across_jobs() {
    // The stronger contract: in reproducible mode the *entire* outcome —
    // witness bits included — is a pure function of the input, regardless
    // of `--jobs`.
    let n = counter(5, 21);
    let outcome = |par| {
        check(
            &n,
            0,
            &BmcOptions {
                max_depth: 40,
                parallelism: par,
                cube: cube_opts(CubeMode::Reproducible),
                ..Default::default()
            },
        )
    };
    let seq = outcome(Parallelism::Sequential);
    assert!(matches!(seq, BmcOutcome::Counterexample { depth: 21, .. }));
    for par in [Parallelism::Threads(2), Parallelism::Threads(8)] {
        assert_eq!(seq, outcome(par), "jobs {par}");
    }
}

#[test]
fn portfolio_seeds_preserve_bmc_verdicts() {
    // `BmcOptions::portfolio` perturbs only restart pacing and phase
    // choices; hit depths must be identical, witnesses must replay.
    let n = counter(4, 13);
    let plain = check(
        &n,
        0,
        &BmcOptions {
            max_depth: 20,
            ..Default::default()
        },
    );
    for portfolio in [1u64, 0xFACE, u64::MAX] {
        for cube in [CubeOptions::default(), cube_opts(CubeMode::Fast)] {
            let seeded = check(
                &n,
                0,
                &BmcOptions {
                    max_depth: 20,
                    portfolio,
                    cube,
                    ..Default::default()
                },
            );
            match (&plain, &seeded) {
                (
                    BmcOutcome::Counterexample { depth: x, .. },
                    BmcOutcome::Counterexample { depth: y, witness },
                ) => {
                    assert_eq!(x, y, "portfolio {portfolio:#x}");
                    assert!(witness.replays_to(&n, n.targets()[0].lit));
                }
                other => panic!("portfolio {portfolio:#x}: {other:?}"),
            }
        }
    }
}

#[test]
fn fast_mode_verdicts_survive_unsat_and_unknown_depths() {
    // An unreachable target: every depth is UNSAT, so all 4 cubes of every
    // depth refute and the clean bound must equal the monolithic one.
    let n = counter(3, 7);
    let mut unreachable = n.clone();
    // value 7 needs all bits set; force b0 to stay 0 by overwriting next.
    let b0 = unreachable.regs()[0];
    unreachable.set_next(b0, Lit::FALSE);
    let plain = check_all(
        &unreachable,
        &BmcOptions {
            max_depth: 12,
            ..Default::default()
        },
    );
    for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let cubed = check_all(
            &unreachable,
            &BmcOptions {
                max_depth: 12,
                parallelism: par,
                cube: cube_opts(CubeMode::Fast),
                ..Default::default()
            },
        );
        assert_verdicts_match(&unreachable, &plain, &cubed, &format!("unreachable, {par}"));
    }
}

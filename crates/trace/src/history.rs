//! Content-addressed run-history store under `.diam/history/`.
//!
//! Layout: one file per recorded run,
//!
//! ```text
//! .diam/history/<fingerprint>/<seq>.json
//! ```
//!
//! where `<fingerprint>` is the FNV-1a workload fingerprint from
//! [`crate::baseline::fingerprint`] (so runs of different inputs/options
//! never mix) and `<seq>` is a zero-padded monotonic sequence number per
//! fingerprint. Each file is one [`Baseline`] in its `BENCH_*.json` format
//! — `benchreport` appends its aggregate here automatically, and the `diam`
//! CLI appends a single-run baseline whenever a run records a trace.
//!
//! [`render_trends`] prints per-phase totals across the last N runs and
//! flags drift by comparing the latest run against the per-phase **median
//! of the earlier runs**, through the same noise gate as `diam-trace diff`
//! ([`DiffOptions`]: regress iff > 1.30× *and* > 20 ms slower by default).

use crate::analyze::PhaseRollup;
use crate::baseline::Baseline;
use crate::diff::{diff_rollups, has_regressions, DiffOptions, PhaseDiff, Verdict};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Default store root, relative to the working directory.
pub const DEFAULT_HISTORY_DIR: &str = ".diam/history";

/// A run-history store rooted at a directory.
#[derive(Debug, Clone)]
pub struct History {
    root: PathBuf,
}

impl History {
    /// A store rooted at an explicit directory (tests, `--history-dir`).
    pub fn at(root: impl Into<PathBuf>) -> History {
        History { root: root.into() }
    }

    /// The default store: `.diam/history` under the working directory.
    pub fn default_root() -> History {
        History::at(DEFAULT_HISTORY_DIR)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Append one baseline under its fingerprint; creates directories on
    /// first use. Returns the assigned sequence number and the file path.
    pub fn append(&self, baseline: &Baseline) -> Result<(u64, PathBuf), String> {
        if baseline.fingerprint.is_empty() {
            return Err("refusing to store a baseline with an empty fingerprint".to_string());
        }
        let dir = self.root.join(&baseline.fingerprint);
        fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create history dir {}: {e}", dir.display()))?;
        let seq = next_seq(&dir)?;
        let path = dir.join(format!("{seq:06}.json"));
        fs::write(&path, baseline.to_json())
            .map_err(|e| format!("cannot write history entry {}: {e}", path.display()))?;
        Ok((seq, path))
    }

    /// All fingerprints in the store with their run counts, sorted.
    pub fn fingerprints(&self) -> Result<Vec<(String, u64)>, String> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(_) => return Ok(out), // no store yet → empty history
        };
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", self.root.display()))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let count = self.runs(&name)?.len() as u64;
            out.push((name, count));
        }
        out.sort();
        Ok(out)
    }

    /// All stored runs for one fingerprint, sorted by sequence number.
    /// Entries that fail to parse or whose stored fingerprint disagrees
    /// with the directory are skipped (a corrupt file must not wedge the
    /// whole history).
    pub fn runs(&self, fingerprint: &str) -> Result<Vec<(u64, Baseline)>, String> {
        let dir = self.root.join(fingerprint);
        let mut out = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => return Ok(out),
        };
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
            let path = entry.path();
            let seq = match path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<u64>().ok())
            {
                Some(s) if path.extension().is_some_and(|e| e == "json") => s,
                _ => continue,
            };
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            match Baseline::parse(&text) {
                Ok(b) if b.fingerprint == fingerprint => out.push((seq, b)),
                _ => continue,
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }
}

fn next_seq(dir: &Path) -> Result<u64, String> {
    let mut max = 0u64;
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        if let Some(seq) = entry
            .path()
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.parse::<u64>().ok())
        {
            max = max.max(seq);
        }
    }
    Ok(max + 1)
}

fn lower_median(sorted: &mut [u64]) -> u64 {
    sorted.sort_unstable();
    if sorted.is_empty() {
        0
    } else {
        sorted[(sorted.len() - 1) / 2]
    }
}

fn to_rollups(b: &Baseline) -> Vec<PhaseRollup> {
    b.phases
        .iter()
        .map(|p| PhaseRollup {
            name: p.name.clone(),
            count: p.count,
            total_ns: p.total_ns,
            self_ns: p.self_ns,
            sat: Default::default(),
            mem: Default::default(),
        })
        .collect()
}

/// Diff the latest run against the per-phase median of the earlier runs.
/// Returns `None` when there is only one run (nothing to compare).
pub fn drift_rows(runs: &[(u64, Baseline)], opts: &DiffOptions) -> Option<Vec<PhaseDiff>> {
    let (latest, earlier) = runs.split_last()?;
    if earlier.is_empty() {
        return None;
    }
    // Per-phase median totals over the earlier runs; a phase missing from a
    // run simply contributes fewer samples (phases come and go as the
    // pipeline evolves).
    let mut totals: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut counts: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut selfs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for (_, b) in earlier {
        for p in &b.phases {
            totals.entry(&p.name).or_default().push(p.total_ns);
            counts.entry(&p.name).or_default().push(p.count);
            selfs.entry(&p.name).or_default().push(p.self_ns);
        }
    }
    let names: Vec<String> = totals.keys().map(|n| n.to_string()).collect();
    let mut base: Vec<PhaseRollup> = names
        .iter()
        .map(|name| PhaseRollup {
            name: name.clone(),
            count: lower_median(counts.get_mut(name.as_str()).unwrap()),
            total_ns: lower_median(totals.get_mut(name.as_str()).unwrap()),
            self_ns: lower_median(selfs.get_mut(name.as_str()).unwrap()),
            sat: Default::default(),
            mem: Default::default(),
        })
        .collect();
    base.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    Some(diff_rollups(&base, &to_rollups(&latest.1), opts))
}

/// Render a per-phase trend table over the last `last` runs plus a drift
/// verdict. Returns `(text, drifted)`; `drifted` is `true` when the latest
/// run regresses vs the median of the earlier shown runs under `opts`.
pub fn render_trends(
    fingerprint: &str,
    runs: &[(u64, Baseline)],
    last: usize,
    opts: &DiffOptions,
) -> (String, bool) {
    let shown = &runs[runs.len().saturating_sub(last.max(2))..];
    let mut out = String::new();
    if shown.is_empty() {
        out.push_str(&format!("history {fingerprint}: no runs recorded\n"));
        return (out, false);
    }
    let tool = &shown.last().unwrap().1.tool;
    out.push_str(&format!(
        "history {fingerprint} — {} runs of {tool} (showing last {})\n",
        runs.len(),
        shown.len()
    ));

    // Phase rows: union of phase names, ordered by the latest run's totals
    // (descending), then name; phases absent from the latest run go last.
    let latest = &shown.last().unwrap().1;
    let mut names: Vec<&str> = Vec::new();
    for p in &latest.phases {
        names.push(&p.name);
    }
    let mut extra: Vec<&str> = Vec::new();
    for (_, b) in shown {
        for p in &b.phases {
            if !names.contains(&p.name.as_str()) && !extra.contains(&p.name.as_str()) {
                extra.push(&p.name);
            }
        }
    }
    extra.sort_unstable();
    names.extend(extra);

    let name_w = names
        .iter()
        .map(|n| n.len())
        .chain(["phase".len(), "wall".len()])
        .max()
        .unwrap_or(5);
    out.push_str(&format!("  {:<name_w$}", "phase"));
    for (seq, _) in shown {
        out.push_str(&format!("  {:>10}", format!("run {seq}")));
    }
    out.push('\n');
    let fmt_ms = |ns: u64| format!("{:.1}ms", ns as f64 / 1e6);
    for name in &names {
        out.push_str(&format!("  {name:<name_w$}"));
        for (_, b) in shown {
            match b.phases.iter().find(|p| &p.name == name) {
                Some(p) => out.push_str(&format!("  {:>10}", fmt_ms(p.total_ns))),
                None => out.push_str(&format!("  {:>10}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("  {:<name_w$}", "wall"));
    for (_, b) in shown {
        out.push_str(&format!("  {:>10}", fmt_ms(b.wall_ns)));
    }
    out.push('\n');

    // Drift gate: latest vs median of the earlier shown runs.
    match drift_rows(shown, opts) {
        None => {
            out.push_str("verdict: STEADY — single run, nothing to compare\n");
            (out, false)
        }
        Some(rows) => {
            let drifted = has_regressions(&rows);
            let regressed: Vec<&str> = rows
                .iter()
                .filter(|r| r.verdict == Verdict::Regress)
                .map(|r| r.name.as_str())
                .collect();
            out.push_str(&format!(
                "drift gate: latest vs median of previous (regress iff > {:.2}x and > {} ms slower)\n",
                opts.rel_threshold,
                opts.abs_floor_ns / 1_000_000
            ));
            if drifted {
                out.push_str(&format!(
                    "verdict: DRIFT — {} phase(s) regressed: {}\n",
                    regressed.len(),
                    regressed.join(", ")
                ));
            } else {
                out.push_str("verdict: STEADY — no drift\n");
            }
            (out, drifted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselinePhase;

    fn baseline(label: &str, bmc_ns: u64, wall_ns: u64) -> Baseline {
        Baseline {
            schema_version: crate::baseline::SCHEMA_VERSION,
            label: label.to_string(),
            tool: "table1".to_string(),
            build: "dev".to_string(),
            created_unix_ms: 5,
            fingerprint: "00aabbccddeeff11".to_string(),
            runs: 1,
            wall_ns,
            peak_rss_kb: None,
            sat: Default::default(),
            phases: vec![
                BaselinePhase {
                    name: "pipeline.run".to_string(),
                    count: 1,
                    total_ns: wall_ns,
                    self_ns: wall_ns - bmc_ns,
                },
                BaselinePhase {
                    name: "bmc.check".to_string(),
                    count: 1,
                    total_ns: bmc_ns,
                    self_ns: bmc_ns,
                },
            ],
            sat_depths: Vec::new(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("diam-history-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_assigns_monotonic_seqs_and_runs_sort() {
        let root = tmpdir("seq");
        let h = History::at(&root);
        let (s1, p1) = h.append(&baseline("r1", 100_000_000, 200_000_000)).unwrap();
        let (s2, _) = h.append(&baseline("r2", 101_000_000, 201_000_000)).unwrap();
        let (s3, _) = h.append(&baseline("r3", 99_000_000, 199_000_000)).unwrap();
        assert_eq!((s1, s2, s3), (1, 2, 3));
        assert!(p1.ends_with("00aabbccddeeff11/000001.json"), "{p1:?}");
        let runs = h.runs("00aabbccddeeff11").unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].1.label, "r1");
        assert_eq!(runs[2].1.label, "r3");
        assert_eq!(
            h.fingerprints().unwrap(),
            vec![("00aabbccddeeff11".to_string(), 3)]
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_skipped_not_fatal() {
        let root = tmpdir("corrupt");
        let h = History::at(&root);
        h.append(&baseline("ok", 100_000_000, 200_000_000)).unwrap();
        fs::write(root.join("00aabbccddeeff11/000002.json"), "not json").unwrap();
        fs::write(root.join("00aabbccddeeff11/README"), "ignore me").unwrap();
        let runs = h.runs("00aabbccddeeff11").unwrap();
        assert_eq!(runs.len(), 1);
        // ... but the corrupt file still occupies its seq slot.
        let (seq, _) = h
            .append(&baseline("next", 100_000_000, 200_000_000))
            .unwrap();
        assert_eq!(seq, 3);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn steady_runs_report_no_drift() {
        let runs: Vec<(u64, Baseline)> = (1..=3)
            .map(|i| (i, baseline(&format!("r{i}"), 100_000_000, 200_000_000)))
            .collect();
        let (text, drifted) = render_trends("00aabbccddeeff11", &runs, 10, &DiffOptions::default());
        assert!(!drifted, "{text}");
        assert!(text.contains("3 runs of table1"), "{text}");
        assert!(text.contains("verdict: STEADY — no drift"), "{text}");
        assert!(text.contains("bmc.check"), "{text}");
        assert!(text.contains("wall"), "{text}");
    }

    #[test]
    fn injected_2x_slowdown_flags_drift() {
        let mut runs: Vec<(u64, Baseline)> = (1..=3)
            .map(|i| (i, baseline(&format!("r{i}"), 100_000_000, 200_000_000)))
            .collect();
        runs.push((4, baseline("slow", 200_000_000, 300_000_000)));
        let (text, drifted) = render_trends("00aabbccddeeff11", &runs, 10, &DiffOptions::default());
        assert!(drifted, "{text}");
        assert!(text.contains("verdict: DRIFT"), "{text}");
        assert!(text.contains("bmc.check"), "{text}");
    }

    #[test]
    fn single_run_has_nothing_to_compare() {
        let runs = vec![(1u64, baseline("only", 100_000_000, 200_000_000))];
        let (text, drifted) = render_trends("00aabbccddeeff11", &runs, 10, &DiffOptions::default());
        assert!(!drifted);
        assert!(text.contains("single run, nothing to compare"), "{text}");
    }

    #[test]
    fn small_jitter_stays_steady_under_the_noise_gate() {
        // +10 ms on a 100 ms phase: under both gates → STEADY.
        let runs = vec![
            (1u64, baseline("r1", 100_000_000, 200_000_000)),
            (2u64, baseline("r2", 110_000_000, 210_000_000)),
        ];
        let (text, drifted) = render_trends("00aabbccddeeff11", &runs, 10, &DiffOptions::default());
        assert!(!drifted, "{text}");
    }
}

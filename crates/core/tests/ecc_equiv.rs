//! Differential soundness harness for the SumSweep eccentricity engine.
//!
//! The oracle is `exact.rs`: explicit exploration of the full state space.
//! For any netlist small enough to explore, a certificate over *all* its
//! registers bounds the same graph the oracle walks, so `factor` must
//! dominate the exact `pairwise` diameter — with equality whenever the
//! sweeps converged (`exact`), since both sides enumerate identical
//! reachable sets under exhaustive free inputs. On top of that, the
//! end-to-end `d̂` with `--ecc on` must stay sound (hittable targets hit
//! within `d̂ − 1`) and never exceed the blanket `d̂` with `--ecc off`.

use diam_core::eccentricity::{cache_stats_for, component_cert, sum_sweep, EccOptions};
use diam_core::exact::{explore, state_diameter, ExploreLimits};
use diam_core::state_graph::{StateGraph, StateGraphLimits};
use diam_core::structural::{diameter_bound, StructuralOptions};
use diam_core::Bound;
use diam_netlist::sim::SplitMix64;
use diam_netlist::{Gate, Init, Lit, Netlist};
use diam_par::Parallelism;
use proptest::prelude::*;

/// Random sequential netlist with free inputs, mixed inits (no `Init::Fn`,
/// so the state-graph init set matches `explore`'s exactly), and random
/// next-state cones over a shared literal pool.
fn build_netlist(seed: u64, ni: usize, nr: usize, na: usize) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let mut n = Netlist::new();
    let inputs: Vec<Lit> = (0..ni).map(|k| n.input(format!("i{k}")).lit()).collect();
    let mut regs: Vec<Gate> = Vec::with_capacity(nr);
    for k in 0..nr {
        let init = match rng.below(3) {
            0 => Init::Zero,
            1 => Init::One,
            _ => Init::Nondet,
        };
        regs.push(n.reg(format!("r{k}"), init));
    }
    let mut pool: Vec<Lit> = vec![Lit::FALSE];
    pool.extend(&inputs);
    pool.extend(regs.iter().map(|r| r.lit()));
    for _ in 0..na {
        let a = pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1);
        let b = pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1);
        pool.push(n.and(a, b));
    }
    for &r in &regs {
        let nx = pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1);
        n.set_next(r, nx);
    }
    n.add_target(*pool.last().expect("nonempty pool"), "t");
    n.validate().expect("generated netlist is well-formed");
    n
}

/// `a ≤ b` in the bound order (`Exponential` is the top element).
fn bound_le(a: Bound, b: Bound) -> bool {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => x <= y,
        (_, Bound::Exponential) => true,
        (Bound::Exponential, Bound::Finite(_)) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Certificate over all registers vs. the explicit-search diameter.
    #[test]
    fn certificate_dominates_exact_diameter(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=3,
        nr in 1usize..=8,
        na in 0usize..=40,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let opts = EccOptions {
            cutoff: 8,
            ..EccOptions::on()
        };
        let cert = component_cert(&n, n.regs(), &opts)
            .expect("whole-register component fits the limits");
        let oracle = state_diameter(&n, &ExploreLimits::default())
            .expect("generator stays under the explore limits");
        prop_assert!(
            cert.factor >= oracle.pairwise,
            "certified factor {} below exact pairwise diameter {}",
            cert.factor,
            oracle.pairwise
        );
        prop_assert_eq!(cert.states, oracle.reachable_states);
        if cert.exact {
            prop_assert_eq!(cert.factor, oracle.pairwise);
        }
    }

    /// End-to-end `d̂`: `--ecc on` is monotone below the blanket bound and
    /// still sound against the earliest exact hit.
    #[test]
    fn tightened_bound_is_monotone_and_sound(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=3,
        nr in 1usize..=8,
        na in 0usize..=40,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let target = n.targets()[0].lit;
        let off = diameter_bound(&n, target, &StructuralOptions::default());
        let on = diameter_bound(
            &n,
            target,
            &StructuralOptions {
                ecc: EccOptions::on(),
                ..StructuralOptions::default()
            },
        );
        prop_assert!(
            bound_le(on.bound, off.bound),
            "--ecc on loosened d̂: {:?} vs {:?}",
            on.bound,
            off.bound
        );
        if let Some(hit) = explore(&n, &ExploreLimits::default())
            .expect("generator stays under the explore limits")
            .earliest_hit[0]
        {
            for (label, tb) in [("off", &off), ("on", &on)] {
                let Bound::Finite(b) = tb.bound else { continue };
                prop_assert!(
                    hit < b,
                    "--ecc {label} bound {b} misses a hit at step {hit}"
                );
            }
        }
    }

    /// SumSweep results are bit-identical at every parallelism setting.
    #[test]
    fn sweep_results_identical_across_parallelism(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=3,
        nr in 1usize..=8,
        na in 0usize..=40,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let g = StateGraph::build(&n, n.regs(), &StateGraphLimits::default())
            .expect("whole-register component fits the limits");
        let seq = sum_sweep(&g, 16, Parallelism::Sequential);
        let two = sum_sweep(&g, 16, Parallelism::Threads(2));
        let eight = sum_sweep(&g, 16, Parallelism::Threads(8));
        prop_assert_eq!(seq, two);
        prop_assert_eq!(seq, eight);
    }
}

/// One component probed by several targets costs one enumeration: the
/// second `diameter_bound` call recalls the memoized certificate.
#[test]
fn certificates_are_memoized_across_targets() {
    let mut n = Netlist::new();
    let regs: Vec<Gate> = (0..9)
        .map(|k| n.reg(format!("m{k}"), if k == 0 { Init::One } else { Init::Zero }))
        .collect();
    for k in 0..9 {
        n.set_next(regs[k], regs[(k + 8) % 9].lit());
    }
    n.add_target(regs[2].lit(), "head");
    n.add_target(regs[7].lit(), "tail");
    n.validate().expect("ring is well-formed");

    let opts = StructuralOptions {
        ecc: EccOptions::on(),
        ..StructuralOptions::default()
    };
    let fp = n.csr().fingerprint();
    let before = cache_stats_for(fp);
    let head = diameter_bound(&n, n.targets()[0].lit, &opts);
    let tail = diameter_bound(&n, n.targets()[1].lit, &opts);
    let after = cache_stats_for(fp);
    assert_eq!(
        after.0 - before.0,
        1,
        "one shared component, one cache entry"
    );
    assert!(after.1 > before.1, "second target recalls the certificate");
    // Both targets see the same tightened factor: 9 reachable states on a
    // cycle, certified diameter 8, factor 9 ≪ 2^9.
    assert_eq!(head.bound, tail.bound);
    let Bound::Finite(b) = head.bound else {
        panic!("ring bound is finite");
    };
    assert!(b <= 2 * 9, "factor 9 (not 512) dominates d̂ = {b}");
}

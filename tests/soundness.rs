//! The workspace's headline soundness property, tested end to end with
//! proptest-generated netlists:
//!
//! **If a target is hittable at all (exhaustive state-space exploration),
//! then it is hittable within `d̂(t) − 1` steps — for the structural bound
//! on the original netlist and for every bound back-translated through a
//! transformation pipeline (Theorems 1–4).**

use diam::core::exact::{explore, ExploreLimits};
use diam::core::{Bound, Engine, Pipeline, StructuralOptions};
use diam::netlist::{Init, Lit, Netlist};
use diam::transform::com::SweepOptions;
use diam::transform::enlarge::EnlargeOptions;
use proptest::prelude::*;

/// A recipe for one random gate.
#[derive(Debug, Clone)]
enum Op {
    And(usize, usize, bool, bool),
    Or(usize, usize, bool, bool),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

/// A generated netlist description: inputs, register inits, gate ops,
/// next-function picks, and a target pick.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    inits: Vec<u8>,
    ops: Vec<Op>,
    nexts: Vec<usize>,
    target: usize,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    let op = (
        any::<u8>(),
        any::<usize>(),
        any::<usize>(),
        any::<usize>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(kind, a, b, c, ca, cb)| match kind % 4 {
            0 => Op::And(a, b, ca, cb),
            1 => Op::Or(a, b, ca, cb),
            2 => Op::Xor(a, b),
            _ => Op::Mux(a, b, c),
        });
    (
        1usize..=3,
        proptest::collection::vec(0u8..3, 2..=4),
        proptest::collection::vec(op, 4..=12),
        proptest::collection::vec(any::<usize>(), 2..=4),
        any::<usize>(),
    )
        .prop_map(|(num_inputs, inits, ops, nexts, target)| Recipe {
            num_inputs,
            inits,
            ops,
            nexts,
            target,
        })
}

fn build(r: &Recipe) -> Netlist {
    let mut n = Netlist::new();
    let mut pool: Vec<Lit> = (0..r.num_inputs)
        .map(|k| n.input(format!("i{k}")).lit())
        .collect();
    let regs: Vec<_> = r
        .inits
        .iter()
        .enumerate()
        .map(|(k, &init)| {
            let init = match init {
                0 => Init::Zero,
                1 => Init::One,
                _ => Init::Nondet,
            };
            let g = n.reg(format!("r{k}"), init);
            pool.push(g.lit());
            g
        })
        .collect();
    for op in &r.ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            Op::And(a, b, ca, cb) => {
                let (x, y) = (pick(a).xor_complement(ca), pick(b).xor_complement(cb));
                n.and(x, y)
            }
            Op::Or(a, b, ca, cb) => {
                let (x, y) = (pick(a).xor_complement(ca), pick(b).xor_complement(cb));
                n.or(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (pick(a), pick(b));
                n.xor(x, y)
            }
            Op::Mux(s, a, b) => {
                let (s, x, y) = (pick(s), pick(a), pick(b));
                n.mux(s, x, y)
            }
        };
        pool.push(l);
    }
    for (k, &r0) in regs.iter().enumerate() {
        let nx = pool[r.nexts[k % r.nexts.len()].wrapping_add(k) % pool.len()];
        n.set_next(r0, nx);
    }
    n.add_target(pool[r.target % pool.len()], "t");
    n
}

/// Checks the completeness invariant for one pipeline on one netlist.
fn assert_sound(n: &Netlist, pipe: &Pipeline, tag: &str) {
    let truth = explore(n, &ExploreLimits::default()).expect("small netlist");
    let bounds = pipe.bound_targets(n, &StructuralOptions::default());
    if let (Some(hit), Bound::Finite(b)) = (truth.earliest_hit[0], bounds[0].original) {
        assert!(
            hit < b,
            "{tag}: target hit at {hit} but back-translated bound is {b}\n{n:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn structural_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        assert_sound(&n, &Pipeline::new(), "plain");
    }

    #[test]
    fn com_pipeline_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        assert_sound(&n, &Pipeline::com(), "COM");
    }

    #[test]
    fn com_ret_com_pipeline_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        assert_sound(&n, &Pipeline::com_ret_com(), "COM,RET,COM");
    }

    #[test]
    fn enlargement_pipeline_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        let pipe = Pipeline::new()
            .then(Engine::Coi)
            .then(Engine::Enlarge(EnlargeOptions { k: 2, ..Default::default() }));
        assert_sound(&n, &pipe, "COI+ENL(2)");
    }

    #[test]
    fn fold_pipeline_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        let pipe = Pipeline::new()
            .then(Engine::Fold { preferred: 2 })
            .then(Engine::Com(SweepOptions::default()));
        assert_sound(&n, &pipe, "FOLD+COM");
    }

    #[test]
    fn parametric_pipeline_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        let pipe = Pipeline::new()
            .then(Engine::Coi)
            .then(Engine::Parametric)
            .then(Engine::Com(SweepOptions::default()));
        assert_sound(&n, &pipe, "COI+PARAM+COM");
    }

    #[test]
    fn everything_pipeline_bound_covers_earliest_hit(r in recipe()) {
        let n = build(&r);
        let pipe = Pipeline::new()
            .then(Engine::Coi)
            .then(Engine::Com(SweepOptions::default()))
            .then(Engine::Retime)
            .then(Engine::Com(SweepOptions::default()))
            .then(Engine::Enlarge(EnlargeOptions { k: 1, ..Default::default() }));
        assert_sound(&n, &pipe, "COI+COM+RET+COM+ENL(1)");
    }
}

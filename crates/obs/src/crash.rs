//! Crash forensics: panic hooks and post-mortem dump files.
//!
//! A long-lived run that dies must explain itself from an artifact, not a
//! scrollback. This module maintains always-available crash context — the
//! installed session's manifest, per-thread open-span stacks, the flight
//! recorder ([`crate::ring`]), and allocator counters — and writes it to
//! `.diam/crash/<id>.json` when the process panics ([`install_panic_hook`])
//! or a `diam-par` worker job panics ([`record_worker_panic`]). The dump is
//! schema-versioned ([`CRASH_SCHEMA_VERSION`]) and rendered by
//! `diam-trace postmortem`.
//!
//! Nothing here produces output on a healthy run, whatever the `--obs` mode.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::{json, ring, Value};

/// Version stamp of the crash-dump JSON schema (`crash_schema` key).
pub const CRASH_SCHEMA_VERSION: u64 = 1;

/// Ring entries included in a dump (the most recent across all threads).
pub const DUMP_RING_EVENTS: usize = 64;

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Open-span stacks
// ---------------------------------------------------------------------------

/// One open span as tracked for crash dumps.
#[derive(Debug, Clone)]
struct OpenSpan {
    id: u64,
    name: &'static str,
    detail: String,
}

struct ThreadSpans {
    worker: AtomicU32,
    epoch: AtomicU64,
    stack: Mutex<Vec<OpenSpan>>,
}

static SPAN_EPOCH: AtomicU64 = AtomicU64::new(0);
static SPAN_STACKS: Mutex<Vec<Arc<ThreadSpans>>> = Mutex::new(Vec::new());

thread_local! {
    static TL_SPANS: std::sync::OnceLock<Arc<ThreadSpans>> = const { std::sync::OnceLock::new() };
    static TL_DUMPED: Cell<bool> = const { Cell::new(false) };
}

/// Invalidate every thread's crash span stack (a new session started; stale
/// stacks from the previous session must not appear in its dumps).
pub(crate) fn reset_span_stacks() {
    SPAN_EPOCH.fetch_add(1, Ordering::Release);
}

fn with_thread_spans(f: impl FnOnce(&ThreadSpans)) {
    let _ = TL_SPANS.try_with(|cell| {
        let ts = cell.get_or_init(|| {
            let ts = Arc::new(ThreadSpans {
                worker: AtomicU32::new(0),
                epoch: AtomicU64::new(SPAN_EPOCH.load(Ordering::Acquire)),
                stack: Mutex::new(Vec::new()),
            });
            unpoison(SPAN_STACKS.lock()).push(ts.clone());
            ts
        });
        let epoch = SPAN_EPOCH.load(Ordering::Acquire);
        if ts.epoch.swap(epoch, Ordering::AcqRel) != epoch {
            unpoison(ts.stack.lock()).clear();
        }
        f(ts);
    });
}

/// Formats a span's open fields into a compact `k=v k=v` detail string.
pub(crate) fn format_detail(fields: &[(&'static str, Value)]) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(k);
        out.push('=');
        match v {
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(n) => out.push_str(&format!("{n}")),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => out.push_str(s),
        }
    }
    out
}

/// Records a span open on this thread's crash stack.
pub(crate) fn on_span_open(id: u64, name: &'static str, detail: String) {
    with_thread_spans(|ts| {
        ts.worker.store(ring::ring_worker(), Ordering::Relaxed);
        unpoison(ts.stack.lock()).push(OpenSpan { id, name, detail });
    });
}

/// Records a span close (pops by id; tolerates out-of-order drops).
pub(crate) fn on_span_close(id: u64) {
    with_thread_spans(|ts| {
        let mut stack = unpoison(ts.stack.lock());
        if let Some(pos) = stack.iter().rposition(|s| s.id == id) {
            stack.remove(pos);
        }
    });
}

/// Every thread's currently open span stack (worker tag, innermost last),
/// non-empty stacks only. Safe from any thread, including a panic hook.
pub fn open_span_stacks() -> Vec<(u32, Vec<(&'static str, String)>)> {
    let epoch = SPAN_EPOCH.load(Ordering::Acquire);
    let stacks: Vec<Arc<ThreadSpans>> = unpoison(SPAN_STACKS.lock()).clone();
    let mut out = Vec::new();
    for ts in stacks {
        if ts.epoch.load(Ordering::Acquire) != epoch {
            continue;
        }
        let stack = unpoison(ts.stack.lock());
        if stack.is_empty() {
            continue;
        }
        out.push((
            ts.worker.load(Ordering::Relaxed),
            stack.iter().map(|s| (s.name, s.detail.clone())).collect(),
        ));
    }
    out.sort_by_key(|(w, _)| *w);
    out
}

// ---------------------------------------------------------------------------
// Crash context
// ---------------------------------------------------------------------------

static MANIFEST_JSON: Mutex<Option<String>> = Mutex::new(None);
static CRASH_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static DUMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Stashes the active session's pre-rendered manifest JSON object so dumps
/// can name the run without touching the session from a panic hook.
pub(crate) fn set_manifest_json(rendered: String) {
    *unpoison(MANIFEST_JSON.lock()) = Some(rendered);
}

/// Overrides where crash dumps are written (tests point this at a temp
/// directory). `None` restores the default resolution: the
/// `DIAM_CRASH_DIR` environment variable, falling back to `.diam/crash`
/// under the current directory.
pub fn set_crash_dir(dir: Option<PathBuf>) {
    *unpoison(CRASH_DIR.lock()) = dir;
}

/// The directory crash dumps are written to.
pub fn crash_dir() -> PathBuf {
    if let Some(dir) = unpoison(CRASH_DIR.lock()).clone() {
        return dir;
    }
    match std::env::var_os("DIAM_CRASH_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(".diam").join("crash"),
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn render_dump(
    id: &str,
    reason: &str,
    message: &str,
    location: Option<&str>,
    thread_name: &str,
    worker: u32,
    job: Option<u64>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"crash_schema\":{CRASH_SCHEMA_VERSION},\"id\":"
    ));
    json::write_escaped(&mut out, id);
    out.push_str(",\"reason\":");
    json::write_escaped(&mut out, reason);
    out.push_str(",\"message\":");
    json::write_escaped(&mut out, message);
    out.push_str(",\"location\":");
    match location {
        Some(loc) => json::write_escaped(&mut out, loc),
        None => out.push_str("null"),
    }
    out.push_str(",\"thread\":");
    json::write_escaped(&mut out, thread_name);
    out.push_str(&format!(",\"worker\":{worker}"));
    if let Some(job) = job {
        out.push_str(&format!(",\"job\":{job}"));
    }
    out.push_str(&format!(",\"unix_ms\":{}", unix_ms()));

    out.push_str(",\"manifest\":");
    match unpoison(MANIFEST_JSON.lock()).clone() {
        Some(m) => out.push_str(&m),
        None => out.push_str("null"),
    }

    out.push_str(",\"open_spans\":[");
    for (i, (w, stack)) in open_span_stacks().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"worker\":{w},\"stack\":["));
        for (j, (name, detail)) in stack.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_escaped(&mut out, name);
            out.push_str(",\"detail\":");
            json::write_escaped(&mut out, detail);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push(']');

    let snap = ring::snapshot_all();
    let skip = snap.entries.len().saturating_sub(DUMP_RING_EVENTS);
    out.push_str(&format!(
        ",\"ring\":{{\"dropped\":{},\"torn\":{},\"events\":[",
        snap.dropped + skip as u64,
        snap.torn
    ));
    for (i, e) in snap.entries.iter().skip(skip).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_ns\":{},\"worker\":{},\"kind\":",
            e.seq, e.ts_ns, e.worker
        ));
        json::write_escaped(&mut out, e.kind.name());
        out.push_str(",\"name\":");
        json::write_escaped(&mut out, e.name);
        out.push_str(&format!(",\"a\":{},\"b\":{}}}", e.a, e.b));
    }
    out.push_str("]}");

    let t = crate::alloc::totals();
    out.push_str(&format!(
        ",\"alloc\":{{\"enabled\":{},\"live_bytes\":{},\"peak_live_bytes\":{},\
         \"allocs\":{},\"frees\":{},\"alloc_bytes\":{},\"freed_bytes\":{}}}",
        crate::alloc::mem_enabled(),
        crate::alloc::live_bytes(),
        crate::alloc::peak_live_bytes(),
        t.allocs,
        t.frees,
        t.alloc_bytes,
        t.freed_bytes,
    ));
    if let Some(kb) = crate::current_rss_kb() {
        out.push_str(&format!(",\"rss_kb\":{kb}"));
    }
    out.push_str("}\n");
    out
}

fn write_dump(
    reason: &str,
    message: &str,
    location: Option<&str>,
    worker: u32,
    job: Option<u64>,
) -> std::io::Result<PathBuf> {
    let n = DUMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = format!("crash-{}-{}-{n}", unix_ms(), std::process::id());
    let thread = std::thread::current();
    let thread_name = thread.name().unwrap_or("unnamed").to_string();
    let body = render_dump(&id, reason, message, location, &thread_name, worker, job);
    let dir = crash_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Extracts a printable message from a panic payload.
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs the process panic hook (idempotent). The hook writes a crash
/// dump — manifest, open-span stacks, last ring events, allocation counters,
/// panic payload — then chains to the previously installed hook, so the
/// standard panic message still prints.
pub fn install_panic_hook() {
    if HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let already = TL_DUMPED.try_with(|c| c.replace(true)).unwrap_or(true);
        if !already {
            let message = payload_message(info.payload());
            let location = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()));
            ring::note(ring::RingKind::Panic, "panic", 0, 0);
            match write_dump(
                "panic",
                &message,
                location.as_deref(),
                ring::ring_worker(),
                None,
            ) {
                Ok(path) => eprintln!("diam-obs: crash dump written to {}", path.display()),
                Err(e) => eprintln!("diam-obs: cannot write crash dump: {e}"),
            }
            // Re-arm: a caught-and-handled panic must not suppress the dump
            // of a later, genuinely fatal one on this thread.
            let _ = TL_DUMPED.try_with(|c| c.set(false));
        }
        prev(info);
    }));
}

/// Records a `diam-par` worker-job panic: a flight-recorder entry plus a
/// crash dump naming the worker and job, unless the process panic hook
/// already dumped this panic on this thread. Returns the dump path when one
/// was written. Called by the executor between catching and re-raising.
pub fn record_worker_panic(
    worker: u32,
    job: u64,
    payload: &(dyn std::any::Any + Send),
) -> Option<PathBuf> {
    ring::note(
        ring::RingKind::Panic,
        "par.worker_panic",
        job,
        u64::from(worker),
    );
    if HOOK_INSTALLED.load(Ordering::SeqCst) {
        // The hook ran at panic time on this same thread and wrote the dump.
        return None;
    }
    let message = payload_message(payload);
    match write_dump("worker_panic", &message, None, worker, Some(job)) {
        Ok(path) => {
            eprintln!("diam-obs: crash dump written to {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("diam-obs: cannot write crash dump: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_formats_all_value_kinds() {
        let detail = format_detail(&[
            ("target", Value::U64(3)),
            ("delta", Value::I64(-2)),
            ("ratio", Value::F64(0.5)),
            ("hit", Value::Bool(true)),
            ("engine", Value::Str("bdd".to_string())),
        ]);
        assert_eq!(detail, "target=3 delta=-2 ratio=0.5 hit=true engine=bdd");
    }

    #[test]
    fn span_stack_tracks_open_and_close() {
        // Sessions reset the span-stack epoch; hold the install lock so a
        // concurrently running session test cannot clear our stack mid-test.
        let _serial = crate::unpoison(crate::INSTALL.lock());
        reset_span_stacks();
        on_span_open(101, "crash.test.outer", "target=1".to_string());
        on_span_open(102, "crash.test.inner", String::new());
        let stacks = open_span_stacks();
        let mine = stacks
            .iter()
            .find(|(_, s)| s.iter().any(|(n, _)| *n == "crash.test.outer"))
            .expect("this thread's stack is visible");
        assert_eq!(mine.1.len(), 2);
        assert_eq!(mine.1[1].0, "crash.test.inner");
        on_span_close(102);
        on_span_close(101);
        let stacks = open_span_stacks();
        assert!(!stacks
            .iter()
            .any(|(_, s)| s.iter().any(|(n, _)| *n == "crash.test.outer")));
    }

    #[test]
    fn worker_panic_writes_a_schema_valid_dump() {
        let _serial = crate::unpoison(crate::INSTALL.lock());
        let dir = std::env::temp_dir().join(format!("diam_crash_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        set_crash_dir(Some(dir.clone()));
        reset_span_stacks();
        on_span_open(7, "crash.test.span", "index=4".to_string());
        let payload: Box<dyn std::any::Any + Send> = Box::new("unit boom".to_string());
        let path = record_worker_panic(3, 4, payload.as_ref()).expect("dump written");
        on_span_close(7);
        set_crash_dir(None);
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let v = json::parse(text.trim()).expect("dump is valid JSON");
        assert_eq!(v.get("crash_schema").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(
            v.get("reason").and_then(|x| x.as_str()),
            Some("worker_panic")
        );
        assert_eq!(v.get("message").and_then(|x| x.as_str()), Some("unit boom"));
        assert_eq!(v.get("worker").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("job").and_then(|x| x.as_u64()), Some(4));
        assert!(v.get("ring").and_then(|r| r.get("events")).is_some());
        assert!(v.get("alloc").and_then(|a| a.get("allocs")).is_some());
        let spans = v.get("open_spans").and_then(|x| x.as_array()).unwrap();
        assert!(spans.iter().any(|s| {
            s.get("stack")
                .and_then(|st| st.as_array())
                .is_some_and(|st| {
                    st.iter()
                        .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("crash.test.span"))
                })
        }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The `--obs live` sink: a watchdog that makes long runs observable while
//! they run, without touching stdout.
//!
//! When a session is installed with [`ObsMode::Live`](crate::ObsMode::Live),
//! every recorded event also streams through a [`LiveState`]: per-worker
//! open-span stacks are mirrored as events arrive, and a background thread
//! prints two kinds of stderr lines:
//!
//! * **heartbeats** — every [`LiveOptions::heartbeat`], one line per busy
//!   worker showing its innermost spans, the current BMC depth (from
//!   `sat.solve` point events), and a naive linear ETA when the span
//!   advertises its depth range (`max_depth` / `hi` open fields);
//! * **stall dumps** — when no event has arrived for
//!   [`LiveOptions::stall`], a one-shot dump of every worker's open span
//!   stack, so a wedged solve is attributable without attaching a debugger.
//!
//! The sink costs one mutex-protected stack update per event and only
//! exists in live mode; all other modes never allocate a [`LiveState`].

use crate::{Event, EventKind, LiveOptions, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One mirrored open span on a worker's live stack.
struct OpenSpan {
    name: &'static str,
    /// A short human label extracted from the open fields (target name,
    /// engine, column, …), empty when none applies.
    detail: String,
    opened_ns: u64,
    /// Last depth reported by a `sat.solve` point event under this span.
    depth: Option<u64>,
    /// Final depth, when the open fields advertise one (`max_depth`/`hi`).
    max_depth: Option<u64>,
}

#[derive(Default)]
struct WorkerLive {
    stack: Vec<OpenSpan>,
}

/// Shared state between the recording threads and the watchdog thread.
pub(crate) struct LiveState {
    opts: LiveOptions,
    start: Instant,
    /// `ts_ns` of the most recent event (nanoseconds since session start).
    last_event_ns: AtomicU64,
    /// Total events seen (heartbeats stay quiet until the first one).
    events: AtomicU64,
    stop: AtomicBool,
    workers: Mutex<BTreeMap<u32, WorkerLive>>,
}

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fields worth showing next to a span name on a heartbeat line, in
/// preference order.
const DETAIL_KEYS: [&str; 5] = ["target", "design", "engine", "column", "index"];

fn detail_from(fields: &[(&'static str, Value)]) -> String {
    for key in DETAIL_KEYS {
        for (k, v) in fields {
            if *k == key {
                return match v {
                    Value::Str(s) => s.clone(),
                    Value::U64(n) => n.to_string(),
                    Value::I64(n) => n.to_string(),
                    Value::F64(n) => format!("{n}"),
                    Value::Bool(b) => b.to_string(),
                };
            }
        }
    }
    String::new()
}

fn field_u64(fields: &[(&'static str, Value)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        Value::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

impl LiveState {
    pub(crate) fn new(opts: LiveOptions) -> LiveState {
        LiveState {
            opts,
            start: Instant::now(),
            last_event_ns: AtomicU64::new(0),
            events: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            workers: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Mirrors one event into the per-worker stacks (called from
    /// `push_event` on the recording threads).
    pub(crate) fn on_event(&self, ev: &Event) {
        self.last_event_ns.store(ev.ts_ns, Ordering::Relaxed);
        self.events.fetch_add(1, Ordering::Relaxed);
        let mut workers = unpoison(self.workers.lock());
        let w = workers.entry(ev.worker).or_default();
        match &ev.kind {
            EventKind::Open { name, fields, .. } => {
                w.stack.push(OpenSpan {
                    name,
                    detail: detail_from(fields),
                    opened_ns: ev.ts_ns,
                    depth: None,
                    max_depth: field_u64(fields, "max_depth").or(field_u64(fields, "hi")),
                });
            }
            EventKind::Close { name, .. } => {
                // Pop the innermost span with this name (defensive against
                // out-of-order guard drops, mirroring the recorder).
                if let Some(pos) = w.stack.iter().rposition(|s| s.name == *name) {
                    w.stack.remove(pos);
                }
            }
            EventKind::Point { name, fields, .. } => {
                if *name == "sat.solve" {
                    if let (Some(depth), Some(top)) =
                        (field_u64(fields, "depth"), w.stack.last_mut())
                    {
                        top.depth = Some(depth);
                    }
                }
            }
        }
    }

    /// Renders the heartbeat lines for every worker with open spans.
    fn heartbeat_lines(&self, now_ns: u64) -> Vec<String> {
        let workers = unpoison(self.workers.lock());
        let mut lines = Vec::new();
        for (id, w) in workers.iter() {
            if w.stack.is_empty() {
                continue;
            }
            let label = if *id == 0 {
                "main".to_string()
            } else {
                format!("w{id}")
            };
            let path: Vec<String> = w
                .stack
                .iter()
                .map(|s| {
                    if s.detail.is_empty() {
                        s.name.to_string()
                    } else {
                        format!("{}({})", s.name, s.detail)
                    }
                })
                .collect();
            let mut line = format!(
                "diam-obs live: {:>7.1}s {label:<5} {}",
                now_ns as f64 / 1e9,
                path.join(" > ")
            );
            // Depth + ETA from the innermost span that reports progress.
            if let Some(sp) = w.stack.iter().rev().find(|s| s.depth.is_some()) {
                let depth = sp.depth.unwrap_or(0);
                match sp.max_depth {
                    Some(max) if max > 0 && depth <= max => {
                        let frac = (depth + 1) as f64 / (max + 1) as f64;
                        let elapsed_s = now_ns.saturating_sub(sp.opened_ns) as f64 / 1e9;
                        let eta_s = elapsed_s * (1.0 - frac) / frac.max(1e-9);
                        line.push_str(&format!(" depth {depth}/{max} eta {eta_s:.1}s"));
                    }
                    _ => line.push_str(&format!(" depth {depth}")),
                }
            }
            lines.push(line);
            if lines.len() >= 16 {
                lines.push("diam-obs live: … (more workers elided)".to_string());
                break;
            }
        }
        lines
    }

    /// Renders the one-shot stall dump.
    fn stall_lines(&self, quiet_s: f64) -> Vec<String> {
        let workers = unpoison(self.workers.lock());
        let mut lines = vec![format!(
            "diam-obs live: STALL — no event for {quiet_s:.1}s; open span stacks:"
        )];
        let mut any = false;
        for (id, w) in workers.iter() {
            if w.stack.is_empty() {
                continue;
            }
            any = true;
            let label = if *id == 0 {
                "main".to_string()
            } else {
                format!("w{id}")
            };
            let path: Vec<&str> = w.stack.iter().map(|s| s.name).collect();
            lines.push(format!("diam-obs live:   {label}: {}", path.join(" > ")));
        }
        if !any {
            lines.push("diam-obs live:   (no open spans)".to_string());
        }
        lines
    }
}

/// Spawns the watchdog thread for `state`; it runs until
/// [`LiveState::request_stop`] and is joined by `Session::finish`.
pub(crate) fn spawn_watchdog(state: Arc<LiveState>) -> std::thread::JoinHandle<()> {
    eprintln!(
        "diam-obs live: armed — heartbeat every {:.1}s, stall threshold {:.1}s",
        state.opts.heartbeat.as_secs_f64(),
        state.opts.stall.as_secs_f64()
    );
    std::thread::Builder::new()
        .name("diam-obs-live".to_string())
        .spawn(move || watchdog_loop(&state))
        .expect("spawn live watchdog")
}

fn watchdog_loop(state: &LiveState) {
    let tick = state.opts.heartbeat.min(state.opts.stall).div_f64(4.0);
    let tick = tick.max(std::time::Duration::from_millis(10));
    let mut last_beat_ns = 0u64;
    let mut stalled = false;
    while !state.stop.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        let now_ns = state.start.elapsed().as_nanos() as u64;
        if state.events.load(Ordering::Relaxed) == 0 {
            continue; // nothing recorded yet — stay quiet
        }
        let last_ev = state.last_event_ns.load(Ordering::Relaxed);
        let quiet_ns = now_ns.saturating_sub(last_ev);
        if quiet_ns > state.opts.stall.as_nanos() as u64 {
            if !stalled {
                stalled = true;
                for line in state.stall_lines(quiet_ns as f64 / 1e9) {
                    eprintln!("{line}");
                }
            }
        } else {
            stalled = false;
        }
        if now_ns.saturating_sub(last_beat_ns) >= state.opts.heartbeat.as_nanos() as u64 {
            last_beat_ns = now_ns;
            for line in state.heartbeat_lines(now_ns) {
                eprintln!("{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, ObsMode, RunManifest, Session};
    use std::time::Duration;

    /// Live mode records like summary mode and the watchdog thread starts,
    /// beats, and shuts down cleanly with the session.
    #[test]
    fn live_session_records_and_watchdog_stops() {
        let session = Session::install(
            ObsConfig {
                mode: ObsMode::Live,
                live: LiveOptions {
                    heartbeat: Duration::from_millis(20),
                    stall: Duration::from_millis(40),
                },
                ..ObsConfig::default()
            },
            RunManifest::capture("live-test"),
        );
        {
            let _sp = crate::span!("live.outer", target = "t0");
            crate::event!("sat.solve", depth = 3u64);
            // Long enough for at least one heartbeat and one stall window.
            std::thread::sleep(Duration::from_millis(120));
        }
        let report = session.finish();
        assert_eq!(report.events.len(), 3); // open + point + close
        assert_eq!(report.mode, ObsMode::Live);
    }

    /// The stack mirror pairs opens/closes and picks up depth from
    /// `sat.solve` points; heartbeat and stall renderers see it.
    #[test]
    fn live_state_mirrors_stacks() {
        let state = LiveState::new(LiveOptions::default());
        let open = |span, name: &'static str, fields: Vec<(&'static str, Value)>| Event {
            seq: 0,
            ts_ns: 1000,
            worker: 1,
            kind: EventKind::Open {
                span,
                parent: 0,
                name,
                fields,
            },
        };
        state.on_event(&open(
            1,
            "bmc.check",
            vec![
                ("index", Value::U64(4)),
                ("max_depth", Value::U64(49)),
                ("target", Value::Str("t4".into())),
            ],
        ));
        state.on_event(&Event {
            seq: 1,
            ts_ns: 2000,
            worker: 1,
            kind: EventKind::Point {
                span: 1,
                name: "sat.solve",
                fields: vec![("depth", Value::U64(12))],
            },
        });
        let beat = state.heartbeat_lines(3000).join("\n");
        assert!(beat.contains("bmc.check(t4)"), "{beat}");
        assert!(beat.contains("depth 12/49"), "{beat}");
        let stall = state.stall_lines(9.0).join("\n");
        assert!(stall.contains("STALL"), "{stall}");
        assert!(stall.contains("w1: bmc.check"), "{stall}");
        state.on_event(&Event {
            seq: 2,
            ts_ns: 4000,
            worker: 1,
            kind: EventKind::Close {
                span: 1,
                name: "bmc.check",
                dur_ns: 3000,
                fields: vec![],
            },
        });
        assert!(state.heartbeat_lines(5000).is_empty());
        assert!(state.stall_lines(9.0).join("\n").contains("no open spans"));
    }
}

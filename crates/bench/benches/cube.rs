//! Cube-and-conquer BMC benchmarks: deep unrolls solved monolithically vs.
//! split into cubes, sequential vs. fanned out over the `diam-par` pool.
//!
//! The headline comparison is `cube/bmc_unroll`: the same counter hit — a
//! deep obligation per depth — under (a) the monolithic solver, (b)
//! reproducible cubes on one worker (split overhead, no parallelism), and
//! (c) fast cubes at 4 workers (sharing + sibling cancellation). On a
//! multi-core host (c) is the ≥1.5× target tracked in EXPERIMENTS.md; on a
//! single-core runner it degenerates to (b) plus scheduling noise — the
//! numbers are recorded either way so `diam-trace diff-baseline` can
//! compare like with like.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diam_bmc::{check, BmcOptions, BmcOutcome, CubeMode, CubeOptions};
use diam_gen::archetypes::counter;
use diam_netlist::{Lit, Netlist};
use diam_par::Parallelism;

fn deep_counter(bits: usize) -> (Netlist, u64) {
    let mut n = Netlist::new();
    let cnt = counter(&mut n, "c", bits, Lit::TRUE);
    n.add_target(cnt.all_ones, "max");
    (n, (1u64 << bits) - 1)
}

fn opts(depth: u64, mode: CubeMode, par: Parallelism) -> BmcOptions {
    BmcOptions {
        max_depth: depth,
        parallelism: par,
        cube: CubeOptions {
            mode,
            vars: 3,
            // Split only the deepest frame — the one hard obligation. The
            // shallow frames' solves are trivially cheap, so splitting them
            // would pay 2^vars solver clones per depth for nothing.
            min_depth: depth,
        },
        ..BmcOptions::default()
    }
}

fn bench_cube_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube/bmc_unroll");
    group.sample_size(10);
    for bits in [6usize, 8] {
        let (n, depth) = deep_counter(bits);
        let configs: [(&str, BmcOptions); 3] = [
            (
                "mono",
                BmcOptions {
                    max_depth: depth,
                    ..BmcOptions::default()
                },
            ),
            (
                "repro_seq",
                opts(depth, CubeMode::Reproducible, Parallelism::Sequential),
            ),
            (
                "fast_j4",
                opts(depth, CubeMode::Fast, Parallelism::Threads(4)),
            ),
        ];
        for (name, o) in &configs {
            group.bench_with_input(BenchmarkId::new(*name, bits), &(&n, o), |b, (n, o)| {
                b.iter(|| {
                    let r = check(n, 0, o);
                    assert!(matches!(r, BmcOutcome::Counterexample { .. }));
                })
            });
        }
    }
    group.finish();
}

fn bench_portfolio_sweep(c: &mut Criterion) {
    use diam_gen::archetypes::register_file;
    use diam_transform::com::{sweep, SweepOptions};
    let mut group = c.benchmark_group("cube/portfolio_sweep");
    group.sample_size(10);
    // The COM sweep's many small solves: portfolio seeds shuffle restart
    // pacing and phases without changing any verdict.
    let mut n = Netlist::new();
    let m = register_file(&mut n, "m", 3, 3);
    let cells: Vec<Lit> = m.all_cells().iter().map(|r| r.lit()).collect();
    let t = n.and_many(cells);
    n.add_target(t, "t");
    for portfolio in [0u64, 0xFACE] {
        group.bench_with_input(
            BenchmarkId::new("seed", portfolio),
            &portfolio,
            |b, &portfolio| {
                b.iter(|| {
                    sweep(
                        &n,
                        &SweepOptions {
                            portfolio,
                            ..SweepOptions::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cube_unroll, bench_portfolio_sweep);
criterion_main!(benches);

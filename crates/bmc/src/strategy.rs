//! A portfolio strategy tying the whole system together, in the spirit of
//! the transformation-based verification framework this paper's engines
//! belong to: cheap engines run first, each either discharges a target or
//! simplifies the problem for the next.
//!
//! For every target, in order:
//!
//! 1. **random simulation** — finds shallow counterexamples for free;
//! 2. **redundancy removal** (COM) — may collapse the target outright and
//!    yields proven equivalences reused later as induction invariants;
//! 3. **diameter-complete BMC** through a transformation pipeline
//!    (Theorems 1–4) — the paper's contribution: a finite back-translated
//!    bound makes the bounded check a proof either way;
//! 4. **symbolic reachability** — when the bound is too large but the cone
//!    is small enough for BDDs, an exact fixpoint settles the target;
//! 5. **k-induction strengthened with the sweep's invariants** — catches
//!    properties whose diameter stays unboundable but whose inductive core
//!    is shallow;
//! 6. otherwise the target is reported open, with its bound as diagnosis.

use crate::{
    check, k_induction_with_invariants, random_search, BmcOptions, BmcOutcome, InductionOutcome,
    RandomSearchOptions,
};
use diam_core::{Bound, Pipeline, StructuralOptions};
use diam_netlist::sim::Witness;
use diam_netlist::Netlist;
use diam_transform::com::{sweep, SweepOptions};

/// Per-target verdict of [`solve_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetStatus {
    /// The target is unreachable; `by` names the engine that proved it.
    Proved {
        /// Engine that closed the proof.
        by: Engine,
    },
    /// The target is reachable at `depth` (witness replays on the original
    /// netlist).
    Failed {
        /// Earliest-found hit depth (earliest overall when found by the
        /// complete bounded check).
        depth: u64,
        /// Replayable witness.
        witness: Witness,
        /// Engine that found it.
        by: Engine,
    },
    /// Everything inconclusive; the diameter bound is attached as the
    /// diagnosis.
    Open {
        /// The back-translated diameter bound (`None` = exponential).
        bound: Option<u64>,
    },
}

/// The engines a [`TargetStatus`] can credit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Random simulation.
    RandomSim,
    /// Redundancy removal collapsed the target to a constant.
    Com,
    /// Diameter-complete BMC.
    DiameterBmc,
    /// Symbolic (BDD) reachability fixpoint.
    Symbolic,
    /// Invariant-strengthened k-induction.
    Induction,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::RandomSim => write!(f, "random simulation"),
            Engine::Com => write!(f, "redundancy removal"),
            Engine::DiameterBmc => write!(f, "diameter-complete BMC"),
            Engine::Symbolic => write!(f, "symbolic reachability"),
            Engine::Induction => write!(f, "strengthened k-induction"),
        }
    }
}

/// Options for [`solve_all`].
#[derive(Debug, Clone)]
pub struct StrategyOptions {
    /// Random-simulation budget.
    pub random: RandomSearchOptions,
    /// Sweep options (engine 2; its invariants feed engine 4).
    pub sweep: SweepOptions,
    /// The transformation pipeline for diameter bounding (engine 3).
    pub pipeline: Pipeline,
    /// Refuse complete BMC beyond this depth (0 = unlimited).
    pub depth_cap: u64,
    /// Run symbolic reachability when the target's cone has at most this
    /// many registers (0 disables the engine).
    pub symbolic_reg_cap: usize,
    /// Maximum induction depth.
    pub max_induction: u64,
    /// Structural bounding options for engine 3. The portfolio default
    /// enables the eccentricity engine: tighter certified GC bounds pull
    /// more targets under `depth_cap`, closing verdicts the blanket bound
    /// leaves `Unknown`.
    pub structural: StructuralOptions,
}

impl Default for StrategyOptions {
    fn default() -> StrategyOptions {
        StrategyOptions {
            random: RandomSearchOptions::default(),
            sweep: SweepOptions::default(),
            pipeline: Pipeline::com_ret_com(),
            depth_cap: 256,
            symbolic_reg_cap: 40,
            max_induction: 3,
            structural: StructuralOptions {
                ecc: diam_core::EccOptions::on(),
                ..StructuralOptions::default()
            },
        }
    }
}

/// Runs the portfolio on every target of `n`.
pub fn solve_all(n: &Netlist, opts: &StrategyOptions) -> Vec<TargetStatus> {
    // Shared work: one sweep (engine 2 evidence + engine 4 invariants), one
    // pipeline run + bounding pass (engine 3). Keeping the pipeline result
    // around gives engine 3 both halves of the certificate chain: the bound
    // map (how deep to search) and the witness lifters (how to carry a
    // transformed-netlist counterexample home).
    let swept = sweep(n, &opts.sweep);
    let pipelined = opts.pipeline.run(n);
    let bounds = pipelined.bound_targets(&opts.structural);

    (0..n.targets().len())
        .map(|i| {
            // 1. Random simulation.
            if let Some((depth, witness)) = random_search(n, i, &opts.random) {
                return TargetStatus::Failed {
                    depth,
                    witness,
                    by: Engine::RandomSim,
                };
            }
            // 2. Did the sweep collapse the target to constant false?
            let t = n.targets()[i].lit;
            if swept.lit(t) == Some(diam_netlist::Lit::FALSE) {
                return TargetStatus::Proved { by: Engine::Com };
            }
            // 3. Diameter-complete BMC through the transformation pipeline:
            // search on the transformed netlist (to the *transformed* bound)
            // and lift any counterexample home through the certificate
            // chain. Falls back to the original netlist for multiplicative
            // chains or failed lifts.
            let bound = bounds[i].original;
            if let Bound::Finite(b) = bound {
                if opts.depth_cap == 0 || b <= opts.depth_cap {
                    match diameter_complete_check(n, &pipelined, i, b) {
                        BmcOutcome::Counterexample { depth, witness } => {
                            return TargetStatus::Failed {
                                depth,
                                witness,
                                by: Engine::DiameterBmc,
                            };
                        }
                        BmcOutcome::NoHitUpTo(_) => {
                            return TargetStatus::Proved {
                                by: Engine::DiameterBmc,
                            };
                        }
                        BmcOutcome::Unknown { .. } => {}
                    }
                }
            }
            // 4. Symbolic reachability on small-enough cones. The fixpoint
            // is exact: unreachable proves, reachable gives the earliest
            // depth (re-run through BMC for a replayable witness).
            let cone_regs = diam_netlist::analysis::coi(n, [t]).regs.len();
            if opts.symbolic_reg_cap > 0 && cone_regs <= opts.symbolic_reg_cap {
                if let Ok(r) = diam_core::symbolic::reach(
                    n,
                    i,
                    &diam_core::symbolic::SymbolicLimits::default(),
                ) {
                    match r.earliest_hit {
                        None => {
                            return TargetStatus::Proved {
                                by: Engine::Symbolic,
                            };
                        }
                        Some(depth) => {
                            if let BmcOutcome::Counterexample { depth, witness } = check(
                                n,
                                i,
                                &BmcOptions {
                                    max_depth: depth,
                                    ..BmcOptions::default()
                                },
                            ) {
                                return TargetStatus::Failed {
                                    depth,
                                    witness,
                                    by: Engine::Symbolic,
                                };
                            }
                        }
                    }
                }
            }
            // 5. Invariant-strengthened induction.
            match k_induction_with_invariants(n, i, opts.max_induction, &swept.proven) {
                InductionOutcome::Proved { .. } => TargetStatus::Proved {
                    by: Engine::Induction,
                },
                InductionOutcome::Counterexample { depth, witness } => TargetStatus::Failed {
                    depth,
                    witness,
                    by: Engine::Induction,
                },
                InductionOutcome::Unknown => TargetStatus::Open {
                    bound: bound.finite(),
                },
            }
        })
        .collect()
}

/// Engine 3: a complete bounded check of target `index` against its
/// back-translated bound `b`, run through the transformed netlist.
///
/// A clean prefix (original netlist, depths `0..p`) plus a clean
/// transformed check (depths `0..=b − 1 − p`) covers original depths
/// `0..=b − 1` — the same completeness contract as BMC-to-`b − 1` on the
/// original, at the transformed netlist's (smaller) cost; counterexamples
/// come back through the certificate chain's witness lifters and replay on
/// the original netlist.
fn diameter_complete_check(
    n: &Netlist,
    pipelined: &diam_core::PipelineResult,
    index: usize,
    b: u64,
) -> BmcOutcome {
    crate::check_one_transformed(
        n,
        pipelined,
        index,
        &BmcOptions {
            max_depth: b.saturating_sub(1),
            ..BmcOptions::default()
        },
    )
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math here
mod tests {
    use super::*;
    use diam_netlist::{Gate, Init, Lit};

    /// A design exercising every portfolio layer at once.
    fn mixed_design() -> Netlist {
        let mut n = Netlist::new();
        let i = n.input("i").lit();

        // Target 0 — easy hit for random simulation.
        let r = n.reg("easy", Init::Zero);
        n.set_next(r, i);
        n.add_target(r.lit(), "easy_hit");

        // Target 1 — lock-step registers through different structure: COM.
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        let e = n.input("e").lit();
        let na = n.and(i, e);
        let nb = n.mux(e, i, Lit::FALSE);
        n.set_next(a, na);
        n.set_next(b, nb);
        let differ = n.xor(a.lit(), b.lit());
        n.add_target(differ, "lockstep");

        // Target 2 — mod-6 counter overflow behind a pipeline: needs the
        // diameter-complete check (reassociated so COM cannot collapse it).
        let mut en = i;
        for k in 0..4 {
            let p = n.reg(format!("p{k}"), Init::Zero);
            n.set_next(p, en);
            en = p.lit();
        }
        let bits: Vec<Gate> = (0..3).map(|k| n.reg(format!("c{k}"), Init::Zero)).collect();
        let at_five = {
            let hi = n.and(bits[2].lit(), !bits[1].lit());
            n.and(hi, bits[0].lit())
        };
        let clear = n.and(en, at_five);
        let en_inc = n.and(en, !at_five);
        let mut carry = en_inc;
        for r in &bits {
            let inc = n.xor(r.lit(), carry);
            carry = n.and(r.lit(), carry);
            let nx = n.and(inc, !clear);
            n.set_next(*r, nx);
        }
        let overflow = {
            let lo_hi = n.and(bits[0].lit(), bits[2].lit());
            n.and(lo_hi, bits[1].lit())
        };
        n.add_target(overflow, "overflow");
        n
    }

    #[test]
    fn portfolio_credits_the_right_engines() {
        let n = mixed_design();
        let statuses = solve_all(&n, &StrategyOptions::default());
        assert_eq!(statuses.len(), 3);
        match &statuses[0] {
            TargetStatus::Failed { by, witness, .. } => {
                assert_eq!(*by, Engine::RandomSim);
                assert!(witness.replays_to(&n, n.targets()[0].lit));
            }
            other => panic!("target 0: {other:?}"),
        }
        match &statuses[1] {
            TargetStatus::Proved { by } => {
                assert_eq!(*by, Engine::Com);
            }
            other => panic!("target 1: {other:?}"),
        }
        // Target 2's overflow is sometimes within reach of the sweep's
        // invariant vocabulary; the portfolio may close it via COM or the
        // diameter check — either way it must be proved.
        match &statuses[2] {
            TargetStatus::Proved { .. } => {}
            other => panic!("target 2: {other:?}"),
        }

        // With the sweep crippled, the diameter-complete check must pick up
        // the overflow target — exercising the fallback order.
        let crippled = StrategyOptions {
            sweep: SweepOptions {
                max_refinements: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let statuses = solve_all(&n, &crippled);
        match &statuses[2] {
            TargetStatus::Proved { by } => assert_eq!(*by, Engine::DiameterBmc),
            other => panic!("crippled target 2: {other:?}"),
        }
    }

    #[test]
    fn unboundable_targets_are_reported_open() {
        use diam_netlist::sim::SplitMix64;
        let mut n = Netlist::new();
        let mut rng = SplitMix64::new(9);
        // A large stirred ring with an unreachable target: over every
        // engine's head (bounded by our caps).
        let stir = n.input("stir");
        let regs: Vec<Gate> = (0..24)
            .map(|k| n.reg(format!("r{k}"), Init::Zero))
            .collect();
        for k in 0..24 {
            let prev = regs[(k + 23) % 24].lit();
            let nx = if k == 0 {
                n.xor(prev, stir.lit())
            } else if rng.below(4) == 0 {
                n.xor(prev, regs[(k + 12) % 24].lit())
            } else {
                prev
            };
            n.set_next(regs[k], nx);
        }
        // Unreachable but not inductively obvious: all 24 ring bits high
        // while the stir input was never high… just use a conjunction of
        // many bits (random sim will fail to hit it, bounds explode).
        let lits: Vec<Lit> = regs.iter().map(|r| r.lit()).collect();
        let t = n.and_many(lits);
        n.add_target(t, "all_ones");
        // With the symbolic engine disabled, nothing can touch a 2^24
        // bound: reported open with the bound attached as the diagnosis.
        let limited = StrategyOptions {
            max_induction: 1,
            symbolic_reg_cap: 0,
            ..Default::default()
        };
        let statuses = solve_all(&n, &limited);
        match &statuses[0] {
            TargetStatus::Open { bound } => assert_eq!(*bound, Some(1 << 24)),
            other => panic!("expected open, got {other:?}"),
        }
        // The default portfolio includes symbolic reachability, whose exact
        // fixpoint resolves the target (all-ones is reachable at depth 24 by
        // stirring ones around the ring) — with a replayable witness.
        let statuses = solve_all(
            &n,
            &StrategyOptions {
                max_induction: 1,
                ..Default::default()
            },
        );
        match &statuses[0] {
            TargetStatus::Failed { by, witness, depth } => {
                assert_eq!(*by, Engine::Symbolic);
                assert_eq!(*depth, 24);
                assert!(witness.replays_to(&n, n.targets()[0].lit));
            }
            other => panic!("expected symbolic hit, got {other:?}"),
        }
    }
}

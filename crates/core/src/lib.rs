//! # diam-core
//!
//! The core of the `diam` project — a from-scratch Rust reproduction of
//! *Baumgartner & Kuehlmann, "Enhanced Diameter Bounding via Structural
//! Transformation", DATE 2004*.
//!
//! Bounded model checking is complete once its depth reaches the design's
//! *diameter* (Definition 3 of the paper — a generalized, vertex-set-based
//! diameter). Exact diameters are intractable, and overapproximations can be
//! exponentially loose. The paper's contribution, implemented here, is a set
//! of theorems that let a diameter bound computed on a **structurally
//! transformed** netlist back-translate, in constant time, into a bound for
//! the original netlist:
//!
//! * [`structural`] — the fast structural diameter overapproximation of
//!   \[7\]: component partition (CC / AC / MC+QC / GC, see [`classify`]) and
//!   the compositional bound;
//! * [`recurrence`] — the recurrence-diameter baseline of \[2\];
//! * [`exact`] — reference exhaustive exploration for small netlists (the
//!   test oracle);
//! * [`symbolic`] — BDD-based forward reachability: exact initial-state
//!   eccentricities and unreachability proofs for medium netlists;
//! * [`pipeline`] — transformation pipelines with per-target back-translation
//!   (Theorems 1–4);
//! * [`bound`] — saturating bound arithmetic.
//!
//! ## Example
//!
//! ```
//! use diam_core::{Bound, Pipeline, StructuralOptions};
//! use diam_netlist::{Init, Netlist};
//!
//! // A 6-deep pipeline: the plain structural bound is 7, and retiming
//! // (COM,RET,COM) turns the cone combinational — bound 1 on the
//! // transformed netlist, back-translated to 1 + 6 by Theorem 2.
//! let mut n = Netlist::new();
//! let i = n.input("i");
//! let mut prev = i.lit();
//! for k in 0..6 {
//!     let r = n.reg(format!("s{k}"), Init::Zero);
//!     n.set_next(r, prev);
//!     prev = r.lit();
//! }
//! n.add_target(prev, "deep");
//!
//! let bounds = Pipeline::com_ret_com().bound_targets(&n, &StructuralOptions::default());
//! assert_eq!(bounds[0].transformed, Bound::Finite(1));
//! assert_eq!(bounds[0].original, Bound::Finite(7));
//! ```

pub mod bound;
pub mod classify;
pub mod eccentricity;
pub mod exact;
pub mod pipeline;
pub mod recurrence;
pub mod state_graph;
pub mod structural;
pub mod symbolic;

pub use bound::Bound;
pub use classify::{classify_targets, ClassCounts, Classification, ClassifyOptions, RegClass};
pub use diam_par::Parallelism;
pub use diam_transform::pass::{BoundStep, Certificate, CertificateChain};
pub use eccentricity::{EccCert, EccOptions};
pub use pipeline::{BackStep, Element, Engine, Pipeline, PipelineResult, PipelinedBound};
pub use structural::{diameter_bound, StructuralOptions, TargetBound};

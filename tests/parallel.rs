//! Determinism and cancellation tests for the parallel orchestration layers.
//!
//! The contract under test (see `DESIGN.md`, "Threading model"): every
//! per-target fan-out — `prove_all`, `Pipeline::bound_targets`,
//! `classify_targets`, and the cone-sliced `check_all` — produces output
//! that is **bit-identical across all `Parallelism` settings**, because jobs
//! are pure functions of the immutable netlist merged in original target
//! order; and depth-sliced work units stop early (without changing results)
//! once a strictly shallower unit has recorded a hit.

use diam::bmc::{check_all, prove_all, BmcOptions, BmcOutcome, ProveOptions};
use diam::core::{classify_targets, ClassifyOptions, Pipeline, StructuralOptions};
use diam::gen::random::{random_netlist, RandomDesignOptions};
use diam::netlist::{Gate, Init, Lit, Netlist};
use diam::par::Parallelism;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// 24 seeded multi-target designs (deterministic per seed).
fn designs() -> Vec<Netlist> {
    let opts = RandomDesignOptions {
        inputs: 3,
        regs: 5,
        gates: 14,
        targets: 4,
        allow_nondet: true,
    };
    (0..24u64)
        .map(|seed| random_netlist(&opts, 0xD1A0 + seed))
        .collect()
}

#[test]
fn prove_all_is_bit_identical_across_thread_counts() {
    let pipeline = Pipeline::com_ret_com();
    for (k, n) in designs().iter().enumerate() {
        let base = ProveOptions {
            depth_cap: 64,
            ..Default::default()
        };
        let seq = prove_all(n, &pipeline, &base);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            let opts = ProveOptions {
                parallelism: par,
                ..base.clone()
            };
            let got = prove_all(n, &pipeline, &opts);
            // ProveOutcome derives PartialEq including the witness trace:
            // this compares counterexamples bit-for-bit.
            assert_eq!(seq, got, "design {k}, parallelism {par}");
        }
    }
}

#[test]
fn bound_targets_is_identical_across_thread_counts() {
    let pipeline = Pipeline::com();
    for (k, n) in designs().iter().enumerate() {
        let seq = pipeline.bound_targets(n, &StructuralOptions::default());
        for workers in [2usize, 4] {
            let opts = StructuralOptions {
                parallelism: Parallelism::Threads(workers),
                ..Default::default()
            };
            let got = pipeline.bound_targets(n, &opts);
            assert_eq!(seq.len(), got.len());
            for (a, b) in seq.iter().zip(&got) {
                assert_eq!(a.name, b.name, "design {k}");
                assert_eq!(a.transformed, b.transformed, "design {k}");
                assert_eq!(a.original, b.original, "design {k}");
                assert_eq!(a.counts, b.counts, "design {k}");
            }
        }
    }
}

#[test]
fn classify_targets_matches_across_thread_counts() {
    for n in designs().into_iter().take(8) {
        let seq = classify_targets(&n, &ClassifyOptions::default(), Parallelism::Sequential);
        let par = classify_targets(&n, &ClassifyOptions::default(), Parallelism::Threads(3));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.regs, b.regs);
            assert_eq!(a.kinds, b.kinds);
            assert_eq!(a.counts(), b.counts());
        }
    }
}

#[test]
fn sliced_check_all_agrees_with_the_shared_sweep() {
    for (k, n) in designs().iter().enumerate() {
        let shared = check_all(
            n,
            &BmcOptions {
                max_depth: 12,
                ..Default::default()
            },
        );
        for (par, chunk) in [
            (Parallelism::Sequential, 3u64),
            (Parallelism::Threads(2), 0),
            (Parallelism::Threads(4), 2),
        ] {
            let sliced = check_all(
                n,
                &BmcOptions {
                    max_depth: 12,
                    parallelism: par,
                    depth_chunk: chunk,
                    ..Default::default()
                },
            );
            assert_eq!(shared.len(), sliced.len());
            for (i, (a, b)) in shared.iter().zip(&sliced).enumerate() {
                match (a, b) {
                    (
                        BmcOutcome::Counterexample { depth: x, .. },
                        BmcOutcome::Counterexample { depth: y, witness },
                    ) => {
                        assert_eq!(x, y, "design {k} target {i} ({par}, chunk {chunk})");
                        // The sliced path lifts witnesses back to the
                        // original netlist; they must replay there.
                        assert!(
                            witness.replays_to(n, n.targets()[i].lit),
                            "design {k} target {i}: lifted witness does not replay"
                        );
                    }
                    (BmcOutcome::NoHitUpTo(x), BmcOutcome::NoHitUpTo(y)) => {
                        assert_eq!(x, y, "design {k} target {i}")
                    }
                    other => panic!("design {k} target {i}: outcome mismatch {other:?}"),
                }
            }
        }
    }
}

/// A `bits`-wide counter with a target hit exactly when it reaches `value`.
fn counter(bits: usize, value: u64) -> Netlist {
    let mut n = Netlist::new();
    let b: Vec<Gate> = (0..bits)
        .map(|k| n.reg(format!("b{k}"), Init::Zero))
        .collect();
    let mut carry = Lit::TRUE;
    for &bk in &b {
        let nk = n.xor(bk.lit(), carry);
        carry = n.and(bk.lit(), carry);
        n.set_next(bk, nk);
    }
    let lits: Vec<Lit> = (0..bits)
        .map(|k| b[k].lit().xor_complement(value >> k & 1 == 0))
        .collect();
    let t = n.and_many(lits);
    n.add_target(t, format!("value_is_{value}"));
    n
}

#[test]
fn deeper_units_observe_the_frontier_and_stop_early() {
    // The counter hits 5 at depth 5. With one-depth work units and
    // max_depth 120, units 6..=120 must observe the per-target frontier
    // and never reach the solver.
    let n = counter(4, 5);
    let probe = Arc::new(AtomicUsize::new(0));
    let opts = BmcOptions {
        max_depth: 120,
        depth_chunk: 1,
        solve_probe: Some(probe.clone()),
        ..Default::default()
    };
    let seq = check_all(&n, &opts);
    assert!(matches!(
        seq[0],
        BmcOutcome::Counterexample { depth: 5, .. }
    ));
    assert_eq!(
        probe.load(Ordering::Acquire),
        6,
        "exactly depths 0..=5 are solved; the 115 deeper units stop early"
    );

    // Multi-threaded: outcomes (witness included) stay bit-identical, and
    // cancellation still prunes the deep tail — a handful of in-flight
    // units may race past the frontier, but nowhere near all 121.
    let probe_mt = Arc::new(AtomicUsize::new(0));
    let opts_mt = BmcOptions {
        parallelism: Parallelism::Threads(4),
        solve_probe: Some(probe_mt.clone()),
        ..opts.clone()
    };
    let mt = check_all(&n, &opts_mt);
    assert_eq!(seq, mt, "thread count must not change merged outcomes");
    let solves = probe_mt.load(Ordering::Acquire);
    assert!(
        (6..60).contains(&solves),
        "solve count {solves} out of range"
    );
}

#[test]
fn child_tokens_scope_cancellation_hierarchically() {
    use diam::par::CancelToken;

    // Regression for the cube layer's cancellation contract: a parent's
    // cancel reaches every descendant group, while a child's cancel (a SAT
    // cube stopping its siblings) stays inside that group — the parent and
    // unrelated groups keep running.
    let parent = CancelToken::new();
    let group_a = parent.child();
    let group_b = parent.child();
    let grandchild = group_a.child();

    group_a.cancel();
    assert!(group_a.is_cancelled(), "cancelled group observes itself");
    assert!(grandchild.is_cancelled(), "descendants observe the group");
    assert!(!parent.is_cancelled(), "cancellation never flows upward");
    assert!(!group_b.is_cancelled(), "sibling groups are unaffected");

    parent.cancel();
    assert!(group_b.is_cancelled(), "parent cancel reaches every child");

    // Clones share the same flag chain (the token is a handle, not a node).
    let parent2 = CancelToken::new();
    let child = parent2.child();
    let child_clone = child.clone();
    child_clone.cancel();
    assert!(child.is_cancelled());
    assert!(!parent2.is_cancelled());
}

#[test]
fn cancellation_never_changes_merged_results() {
    // Several targets hitting at different depths, chunked finely: the
    // per-target frontiers fire constantly, yet every mode merges to the
    // same outcome vector.
    let mut n = Netlist::new();
    let b: Vec<Gate> = (0..4).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
    let mut carry = Lit::TRUE;
    for &bk in &b {
        let nk = n.xor(bk.lit(), carry);
        carry = n.and(bk.lit(), carry);
        n.set_next(bk, nk);
    }
    for v in [3u64, 9, 14] {
        let lits: Vec<Lit> = (0..4)
            .map(|k| b[k].lit().xor_complement(v >> k & 1 == 0))
            .collect();
        let t = n.and_many(lits);
        n.add_target(t, format!("is_{v}"));
    }
    let reference = check_all(
        &n,
        &BmcOptions {
            max_depth: 20,
            depth_chunk: 1,
            parallelism: Parallelism::Sequential,
            ..Default::default()
        },
    );
    for trial in 0..4 {
        let got = check_all(
            &n,
            &BmcOptions {
                max_depth: 20,
                depth_chunk: 1,
                parallelism: Parallelism::Threads(2 + trial % 3),
                ..Default::default()
            },
        );
        assert_eq!(reference, got, "trial {trial}");
    }
}

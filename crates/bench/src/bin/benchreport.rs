//! `benchreport` — the perf-baseline harness.
//!
//! Runs a table suite N times **in-process** under a `--obs json` session,
//! parses each run's trace with [`diam_trace::Trace::parse`], and folds the
//! runs into one schema-versioned `BENCH_<label>.json` baseline (per-phase
//! medians, SAT totals, peak RSS, workload fingerprint; see
//! `diam_trace::baseline`). Optionally diffs the fresh baseline against a
//! committed one with the noise-aware gate.
//!
//! ```text
//! benchreport [--suite table1|table2|netlist|ecc] [--runs N] [--seed S] [--limit N]
//!             [--label L] [--out PATH] [--baseline PATH] [--quick]
//!             [--history-dir PATH] [--no-history]
//! ```
//!
//! `--quick` is the CI profile: 3 runs over the first 2 designs. Exit
//! codes: `0` success / no regressions, `1` regressions vs `--baseline`,
//! `2` usage or aggregation error.
//!
//! The `netlist` suite is the CSR-substrate scaling workout: generate the
//! deterministic `large` archetype (1M gates by default), round-trip it
//! through binary AIGER, then run cone-of-influence and classification on
//! the full-netlist `parity` target — each phase under its own span. For
//! this suite `--limit` is reinterpreted as the gate floor in *thousands*
//! (so `--quick`'s `--limit 2` becomes a 2k-gate smoke run).
//!
//! Every successful aggregation is also appended to the run-history store
//! (`.diam/history/<fingerprint>/<seq>.json` by default; see
//! `diam_trace::history`) so `diam-trace history <fingerprint>` can show
//! trends across invocations. `--no-history` opts out; `--history-dir`
//! redirects the store (tests, scratch checkouts).
//!
//! Progress goes to **stderr**; the only stdout output is the baseline
//! path line (and the diff table when `--baseline` is given), so the tool
//! is pipeline-friendly.

use diam_bench::run_suite_with;
use diam_gen::{gp, iscas};
use diam_obs::{ObsConfig, ObsMode, RunManifest, Session};
use diam_par::Parallelism;
use diam_trace::{diff, history, Baseline, DiffOptions, Trace};
use std::process::ExitCode;

const USAGE: &str = "usage: benchreport [--suite table1|table2|netlist|ecc] [--runs N] [--seed S] \
[--limit N] [--label L] [--out PATH] [--baseline PATH] [--quick] [--history-dir PATH] \
[--no-history]";

struct Cli {
    suite: String,
    runs: usize,
    seed: u64,
    limit: Option<usize>,
    label: String,
    out: Option<String>,
    baseline: Option<String>,
    history_dir: Option<String>,
    no_history: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        suite: "table1".into(),
        runs: 5,
        seed: 1,
        limit: None,
        label: "local".into(),
        out: None,
        baseline: None,
        history_dir: None,
        no_history: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--suite" => {
                cli.suite = value("--suite")?;
                if !matches!(cli.suite.as_str(), "table1" | "table2" | "netlist" | "ecc") {
                    return Err(format!(
                        "--suite expects table1|table2|netlist|ecc, got `{}`",
                        cli.suite
                    ));
                }
            }
            "--runs" => {
                cli.runs = value("--runs")?
                    .parse()
                    .map_err(|_| "--runs expects a count".to_string())?;
                if cli.runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--limit" => {
                cli.limit = Some(
                    value("--limit")?
                        .parse()
                        .map_err(|_| "--limit expects a design count".to_string())?,
                );
            }
            "--label" => cli.label = value("--label")?,
            "--out" => cli.out = Some(value("--out")?),
            "--baseline" => cli.baseline = Some(value("--baseline")?),
            "--history-dir" => cli.history_dir = Some(value("--history-dir")?),
            "--no-history" => cli.no_history = true,
            "--quick" => {
                cli.runs = 3;
                cli.limit = Some(2);
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(cli)
}

/// One instrumented in-process suite run → a parsed trace.
fn one_run(cli: &Cli) -> Result<Trace, String> {
    let mut manifest = RunManifest::capture(&cli.suite)
        .option("seed", cli.seed.to_string())
        .option("jobs", Parallelism::Sequential.to_string())
        .option("obs", ObsMode::Json.to_string());
    if let Some(limit) = cli.limit {
        manifest = manifest.option("limit", limit.to_string());
    }
    let config = ObsConfig {
        mode: ObsMode::Json,
        ..ObsConfig::default()
    };
    let session = Session::install(config, manifest);
    if cli.suite == "netlist" {
        let min_gates = cli.limit.map_or(1_000_000, |l| l.max(1) * 1000);
        run_netlist_suite(cli.seed, min_gates);
    } else if cli.suite == "ecc" {
        run_ecc_suite(cli.seed);
    } else {
        let mut suite = match cli.suite.as_str() {
            "table2" => gp::suite(cli.seed),
            _ => iscas::suite(cli.seed),
        };
        if let Some(limit) = cli.limit {
            suite.truncate(limit);
        }
        run_suite_with(&suite, false, Parallelism::Sequential);
    }
    let report = session.finish();
    let jsonl = report.to_jsonl();
    Trace::parse(&jsonl).map_err(|e| format!("in-process trace failed validation: {e}"))
}

/// The CSR-substrate scaling workout: generate → binary-AIGER round-trip →
/// full-netlist cone of influence → classification, one span per phase.
fn run_netlist_suite(seed: u64, min_gates: usize) {
    use diam_core::classify::{classify, ClassifyOptions};
    use diam_gen::large::{large, LargeOptions};
    use diam_netlist::{aiger, analysis};

    let mut sp = diam_obs::span!("netlist.scale", min_gates = min_gates, seed = seed);
    let n = {
        let _g = diam_obs::span!("netlist.generate");
        large(&LargeOptions { min_gates, seed })
    };
    let mut buf = Vec::new();
    {
        let _g = diam_obs::span!("netlist.write_binary");
        aiger::write_binary(&n, &mut buf).expect("large archetype is AIGER-expressible");
    }
    let parsed = {
        let _g = diam_obs::span!("netlist.parse");
        aiger::read(std::io::Cursor::new(buf.as_slice())).expect("round-trip parses")
    };
    let parity = parsed.targets()[0].lit;
    let cone = {
        let _g = diam_obs::span!("netlist.coi");
        analysis::coi(&parsed, [parity])
    };
    let classes = {
        let _g = diam_obs::span!("netlist.classify");
        classify(&parsed, &cone.regs, &ClassifyOptions::default())
    };
    sp.record("gates", parsed.num_gates());
    sp.record("aig_bytes", buf.len());
    sp.record("cone_regs", cone.regs.len());
    sp.record("classified", classes.counts().total());
}

/// The eccentricity-engine workout: enumerate + SumSweep a 2^12- and a
/// 2^16-state component, then prove an unreachable token-ring target twice —
/// once at the blanket 2^12 BMC depth, once at the certified depth — so the
/// baseline captures the end-to-end wall-time the tighter d̂ buys.
fn run_ecc_suite(seed: u64) {
    use diam_bmc::{prove, ProveOptions, ProveOutcome};
    use diam_core::eccentricity::{self, sum_sweep, EccOptions};
    use diam_core::state_graph::{StateGraph, StateGraphLimits};
    use diam_core::{Pipeline, StructuralOptions};
    use diam_gen::archetypes;
    use diam_netlist::Netlist;
    use diam_par::Parallelism;

    // Every run starts cold so the enumerate phases time real work, not
    // the memo cache.
    eccentricity::cache_clear();
    let mut sp = diam_obs::span!("ecc.scale", seed = seed);

    // Enumerate + sweep at 2^12 and 2^16 states: an enabled binary counter
    // visits every state on one long cycle (one free signal).
    let mut states = [0u64; 2];
    for (i, (enumerate_tag, sweep_tag, bits)) in [
        ("ecc.enumerate_4k", "ecc.sweep_4k", 12usize),
        ("ecc.enumerate_64k", "ecc.sweep_64k", 16),
    ]
    .into_iter()
    .enumerate()
    {
        let mut n = Netlist::new();
        let en = n.input("en").lit();
        let c = archetypes::counter(&mut n, "c", bits, en);
        n.add_target(c.all_ones, "wrap");
        let g = {
            let _g = diam_obs::span!(enumerate_tag, bits = bits as u64);
            StateGraph::build(&n, &c.regs, &StateGraphLimits::default())
                .expect("counter fits the default limits")
        };
        let summary = {
            let _g = diam_obs::span!(sweep_tag, states = g.num_states() as u64);
            sum_sweep(&g, 16, Parallelism::Sequential)
        };
        assert_eq!(
            g.num_states() as u64,
            1 << bits,
            "counter visits all states"
        );
        assert!(summary.diameter < 1 << bits, "certified below blanket");
        states[i] = g.num_states() as u64;
    }

    // End-to-end BMC: the 12-position token ring's two-token target is
    // unreachable; blanket d̂ unrolls to 2^12 − 1, the certificate to 11.
    // Both sides run under the same depth cap. The blanket bound blows the
    // cap, so that side falls back to a raw capped sweep that settles
    // nothing (the practical "Unknown" a loose d̂ buys); the certificate
    // fits under the cap and the proof completes outright.
    let mut n = Netlist::new();
    let step = n.input("step").lit();
    let ring = archetypes::token_ring(&mut n, "ring", 12, step);
    let two = n.and(ring[0].lit(), ring[1].lit());
    n.add_target(two, "two_tokens");
    let pipeline = Pipeline::new();
    const CAP: u64 = 128;
    {
        let mut bmc_sp = diam_obs::span!("ecc.bmc_blanket", cap = CAP);
        let opts = ProveOptions {
            depth_cap: CAP,
            ..ProveOptions::default()
        };
        let outcome = prove(&n, 0, &pipeline, &opts);
        let ProveOutcome::BoundTooLarge { bound: Some(bound) } = outcome else {
            panic!("blanket bound must exceed the cap, got {outcome:?}");
        };
        let swept = diam_bmc::check(
            &n,
            0,
            &diam_bmc::BmcOptions {
                max_depth: CAP,
                ..diam_bmc::BmcOptions::default()
            },
        );
        assert_eq!(
            swept,
            diam_bmc::BmcOutcome::NoHitUpTo(CAP),
            "capped sweep must stay inconclusive"
        );
        bmc_sp.record("bound", bound);
        bmc_sp.record("verdict", "unknown");
    }
    {
        let mut bmc_sp = diam_obs::span!("ecc.bmc_tight", cap = CAP);
        let opts = ProveOptions {
            structural: StructuralOptions {
                ecc: EccOptions::on(),
                ..StructuralOptions::default()
            },
            depth_cap: CAP,
            ..ProveOptions::default()
        };
        let outcome = prove(&n, 0, &pipeline, &opts);
        let ProveOutcome::Proved { bound } = outcome else {
            panic!("two-token ring target must prove under the cap, got {outcome:?}");
        };
        bmc_sp.record("bound", bound);
        bmc_sp.record("verdict", "proved");
    }
    sp.record("states_4k", states[0]);
    sp.record("states_64k", states[1]);
}

fn run() -> Result<ExitCode, String> {
    let cli = parse_cli()?;
    let mut traces = Vec::with_capacity(cli.runs);
    for i in 0..cli.runs {
        let trace = one_run(&cli)?;
        eprintln!(
            "benchreport: run {}/{}: {} wall {:.3}s, {} spans, {} sat solves",
            i + 1,
            cli.runs,
            cli.suite,
            trace.manifest.wall_ns as f64 / 1e9,
            trace.span_count(),
            trace
                .roots()
                .iter()
                .map(|id| trace.spans[id].sat.solves)
                .sum::<u64>(),
        );
        traces.push(trace);
    }

    let baseline = Baseline::from_traces(&cli.label, &traces)?;
    let out_path = cli
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", cli.label));
    std::fs::write(&out_path, baseline.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "benchreport: wrote {out_path} ({} runs of {}, median wall {:.3}s, fingerprint {})",
        baseline.runs,
        baseline.tool,
        baseline.wall_ns as f64 / 1e9,
        baseline.fingerprint
    );

    if !cli.no_history {
        let store = match &cli.history_dir {
            Some(dir) => history::History::at(dir),
            None => history::History::default_root(),
        };
        // History is best-effort: a read-only checkout must not fail the
        // benchmark run itself.
        match store.append(&baseline) {
            Ok((seq, path)) => eprintln!(
                "benchreport: history run {seq} recorded at {}",
                path.display()
            ),
            Err(e) => eprintln!("benchreport: history append skipped: {e}"),
        }
    }

    if let Some(base_path) = &cli.baseline {
        let text = std::fs::read_to_string(base_path)
            .map_err(|e| format!("cannot read {base_path}: {e}"))?;
        let committed = Baseline::parse(&text).map_err(|e| format!("{base_path}: {e}"))?;
        let opts = DiffOptions::default();
        let rows = diff::diff_baselines(&committed, &baseline, &opts)?;
        print!("{}", diff::render_diff(&rows, &opts));
        if diff::has_regressions(&rows) {
            return Ok(ExitCode::from(1));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("benchreport: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

//! Property test: any trace a real `diam-obs` session can emit survives
//! `Trace::parse` → `Trace::to_jsonl` → `Trace::parse` unchanged.
//!
//! The strategy is an ops interpreter: a random instruction tape drives a
//! live Json-mode session (nested spans, point events, SAT charging,
//! histogram metrics), and the session's `Report::to_jsonl()` output — the
//! exact bytes `--trace-out` would write — is round-tripped through the
//! model. Key order is normalized by the first parse, so model equality
//! after the second parse is the lossless-ness claim.

use diam_obs::{ObsConfig, ObsMode, RunManifest, Session};
use diam_trace::Trace;
use proptest::prelude::*;

const NAMES: [&str; 3] = ["phase.alpha", "phase.beta", "phase.gamma"];

/// Interprets one instruction tape against the installed session.
fn run_ops(ops: &[(u8, u8)]) {
    let mut guards = Vec::new();
    for &(op, arg) in ops {
        match op {
            0 => {
                let name = NAMES[arg as usize % NAMES.len()];
                let mut guard = diam_obs::span!(name, index = arg as u64);
                if arg % 2 == 0 {
                    guard.record("flag", u64::from(arg));
                }
                guards.push(guard);
            }
            1 => {
                guards.pop(); // closes the innermost span, if any
            }
            2 => {
                diam_obs::event!(
                    "sat.solve",
                    depth = arg as u64,
                    conflicts = (arg as u64) * 3
                );
            }
            3 => diam_obs::charge_sat(arg as u64, 1, 2),
            _ => diam_obs::histogram_record("prop.hist", arg as u64),
        }
    }
    // Close innermost-first so spans unwind like real RAII scopes.
    while guards.pop().is_some() {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn session_output_round_trips(
        ops in proptest::collection::vec((0u8..5, any::<u8>()), 0..=48)
    ) {
        let config = ObsConfig {
            mode: ObsMode::Json,
            ..ObsConfig::default()
        };
        let manifest = RunManifest::capture("roundtrip").option("kind", "property");
        let session = Session::install(config, manifest);
        run_ops(&ops);
        let jsonl = session.finish().to_jsonl();

        let t1 = Trace::parse(&jsonl)
            .unwrap_or_else(|e| panic!("live session emitted an invalid trace: {e}\n{jsonl}"));
        let t2 = Trace::parse(&t1.to_jsonl())
            .unwrap_or_else(|e| panic!("re-serialized model failed to parse: {e}"));
        prop_assert_eq!(t1, t2);
    }
}

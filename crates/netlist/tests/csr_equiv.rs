//! Differential testing of the CSR substrate against pre-refactor reference
//! implementations.
//!
//! Every analysis that was rewritten onto the cached CSR / visit engine —
//! cone of influence, levelization, the register dependency graph and its
//! condensation, and the bit-parallel simulator — is checked here against a
//! deliberately naive reference that walks `GateKind` edges directly with
//! `HashSet` marks, the way the code worked before the refactor. The
//! references are slow and allocation-happy by design: simple enough to
//! audit by eye.
//!
//! The same harness pins down the visit engine's determinism contract:
//! BFS orders and cone results must be bit-identical across `Sequential`,
//! `Threads(2)`, and `Threads(8)`.

use diam_netlist::analysis::{self, coi, coi_with, condense, levels, reg_graph};
use diam_netlist::csr::NodeKind;
use diam_netlist::sim::{simulate, SplitMix64, Stimulus};
use diam_netlist::visit::{bfs, Dir, Expand};
use diam_netlist::{Gate, GateKind, Init, Lit, Netlist};
use diam_par::Parallelism;
use proptest::prelude::*;
use std::collections::HashSet;

/// Deterministically expands a seed into a random sequential netlist:
/// `ni` inputs, `nr` registers (all four init kinds, `Init::Fn` cones kept
/// input-only so the netlist validates), `na` AND picks over a growing pool,
/// and 1–3 targets.
fn build_netlist(seed: u64, ni: usize, nr: usize, na: usize) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let mut n = Netlist::new();
    let inputs: Vec<Lit> = (0..ni).map(|k| n.input(format!("i{k}")).lit()).collect();
    let mut regs: Vec<Gate> = Vec::with_capacity(nr);
    for k in 0..nr {
        let init = match rng.below(4) {
            0 => Init::Zero,
            1 => Init::One,
            2 => Init::Nondet,
            _ => {
                // Input-only literal (or constant), possibly complemented.
                let l = if inputs.is_empty() || rng.below(4) == 0 {
                    Lit::FALSE
                } else {
                    inputs[rng.below(inputs.len() as u64) as usize]
                };
                Init::Fn(l.xor_complement(rng.below(2) == 1))
            }
        };
        regs.push(n.reg(format!("r{k}"), init));
    }
    let mut pool: Vec<Lit> = vec![Lit::FALSE];
    pool.extend(&inputs);
    pool.extend(regs.iter().map(|r| r.lit()));
    let pick = |rng: &mut SplitMix64, pool: &[Lit]| {
        pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1)
    };
    for _ in 0..na {
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        pool.push(n.and(a, b));
    }
    for &r in &regs {
        let nx = pick(&mut rng, &pool);
        n.set_next(r, nx);
    }
    let ntargets = 1 + rng.below(3) as usize;
    for t in 0..ntargets {
        let l = pick(&mut rng, &pool);
        n.add_target(l, format!("t{t}"));
    }
    n.validate().expect("generated netlist is well-formed");
    n
}

/// Reference cone of influence: recursive-style DFS over `GateKind` edges
/// with a `HashSet` mark set (the pre-refactor implementation shape).
fn ref_coi(n: &Netlist, roots: &[Lit]) -> HashSet<Gate> {
    let mut seen: HashSet<Gate> = HashSet::new();
    let mut stack: Vec<Gate> = roots.iter().map(|l| l.gate()).collect();
    while let Some(g) = stack.pop() {
        if !seen.insert(g) {
            continue;
        }
        match n.kind(g) {
            GateKind::And(a, b) => {
                stack.push(a.gate());
                stack.push(b.gate());
            }
            GateKind::Reg => {
                stack.push(n.reg_next(g).gate());
                if let Init::Fn(l) = n.reg_init(g) {
                    stack.push(l.gate());
                }
            }
            GateKind::Const0 | GateKind::Input => {}
        }
    }
    seen
}

/// Reference levels: direct `GateKind` recurrence in index order.
fn ref_levels(n: &Netlist) -> Vec<u32> {
    let mut lv = vec![0u32; n.num_gates()];
    for g in n.gates() {
        if let GateKind::And(a, b) = n.kind(g) {
            lv[g.index()] = 1 + lv[a.gate().index()].max(lv[b.gate().index()]);
        }
    }
    lv
}

/// Reference register dependency edges: per-register combinational DFS from
/// the next-state function, stopping at registers.
fn ref_reg_edges(n: &Netlist, regs: &[Gate]) -> HashSet<(usize, usize)> {
    let index_of: std::collections::HashMap<Gate, usize> =
        regs.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut edges = HashSet::new();
    for (i, &r) in regs.iter().enumerate() {
        let mut seen: HashSet<Gate> = HashSet::new();
        let mut stack = vec![n.reg_next(r).gate()];
        while let Some(g) = stack.pop() {
            if !seen.insert(g) {
                continue;
            }
            match n.kind(g) {
                GateKind::And(a, b) => {
                    stack.push(a.gate());
                    stack.push(b.gate());
                }
                GateKind::Reg => {
                    if let Some(&j) = index_of.get(&g) {
                        edges.insert((j, i)); // j feeds i
                    }
                }
                GateKind::Const0 | GateKind::Input => {}
            }
        }
    }
    edges
}

/// Reference simulator: per-step `GateKind` dispatch, sweeping the gate list
/// in index order (ANDs are topological, so one sweep settles a frame).
fn ref_simulate(n: &Netlist, stim: &Stimulus) -> Vec<Vec<u64>> {
    let eval = |row: &[u64], l: Lit| -> u64 {
        let v = row[l.gate().index()];
        if l.is_complement() {
            !v
        } else {
            v
        }
    };
    let sweep = |n: &Netlist, row: &mut Vec<u64>| {
        for g in n.gates() {
            if let GateKind::And(a, b) = n.kind(g) {
                row[g.index()] = eval(row, a) & eval(row, b);
            }
        }
    };
    let mut values: Vec<Vec<u64>> = Vec::new();
    for t in 0..stim.len() {
        let mut row = vec![0u64; n.num_gates()];
        for (k, &i) in n.inputs().iter().enumerate() {
            row[i.index()] = stim.inputs[t][k];
        }
        if t == 0 {
            sweep(n, &mut row);
            for (j, &r) in n.regs().iter().enumerate() {
                row[r.index()] = match n.reg_init(r) {
                    Init::Zero => 0,
                    Init::One => !0,
                    Init::Nondet => stim.nondet_init[j],
                    Init::Fn(l) => eval(&row, l),
                };
            }
        } else {
            let prev = &values[t - 1];
            for &r in n.regs() {
                row[r.index()] = eval(prev, n.reg_next(r));
            }
        }
        sweep(n, &mut row);
        values.push(row);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coi_matches_reference(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=6,
        nr in 0usize..=10,
        na in 0usize..=60,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let roots: Vec<Lit> = n.targets().iter().map(|t| t.lit).collect();
        let want = ref_coi(&n, &roots);
        let got = coi(&n, roots.clone());
        for g in n.gates() {
            prop_assert_eq!(got.contains(g), want.contains(&g), "gate {} membership", g);
        }
        let want_regs: Vec<Gate> =
            n.regs().iter().copied().filter(|r| want.contains(r)).collect();
        let want_inputs: Vec<Gate> =
            n.inputs().iter().copied().filter(|i| want.contains(i)).collect();
        prop_assert_eq!(&got.regs, &want_regs);
        prop_assert_eq!(&got.inputs, &want_inputs);
    }

    #[test]
    fn levels_match_reference(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=6,
        nr in 0usize..=8,
        na in 0usize..=80,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        prop_assert_eq!(levels(&n), ref_levels(&n));
    }

    #[test]
    fn reg_graph_and_condensation_match_reference(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=4,
        nr in 1usize..=12,
        na in 0usize..=60,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let regs: Vec<Gate> = n.regs().to_vec();
        let g = reg_graph(&n, &regs);
        let want = ref_reg_edges(&n, &regs);
        let mut got: HashSet<(usize, usize)> = HashSet::new();
        for i in 0..g.len() {
            for &p in g.preds(i) {
                got.insert((p as usize, i));
            }
            // succs must be the exact transpose of preds.
            for &s in g.succs(i) {
                prop_assert!(
                    g.preds(s as usize).contains(&(i as u32)),
                    "succ edge {i}->{s} missing from preds"
                );
            }
        }
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(g.num_edges(), want.len());

        // Condensation invariants over the (verified) graph.
        let cond = condense(&g);
        prop_assert_eq!(cond.comp_of.len(), g.len());
        for (c, comp) in cond.comps.iter().enumerate() {
            for &v in comp {
                prop_assert_eq!(cond.comp_of[v], c);
            }
            let is_cyclic = comp.len() > 1
                || comp.iter().any(|&v| want.contains(&(v, v)));
            prop_assert_eq!(cond.cyclic[c], is_cyclic, "component {c} cyclicity");
        }
    }

    #[test]
    fn simulation_matches_reference(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=5,
        nr in 0usize..=8,
        na in 0usize..=50,
        steps in 1usize..=8,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let mut rng = SplitMix64::new(seed ^ 0xBEEF);
        let stim = Stimulus::random(&n, steps, &mut rng);
        let trace = simulate(&n, &stim);
        let want = ref_simulate(&n, &stim);
        for (t, row) in want.iter().enumerate() {
            for g in n.gates() {
                prop_assert_eq!(
                    trace.word(g.lit(), t),
                    row[g.index()],
                    "gate {} at step {}", g, t
                );
            }
        }
    }

    #[test]
    fn parallel_visits_are_bit_identical(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=6,
        nr in 0usize..=10,
        na in 0usize..=120,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let roots: Vec<u32> = n
            .targets()
            .iter()
            .map(|t| t.lit.gate().index() as u32)
            .collect();
        let csr = n.csr();
        for dir in [Dir::Fanin, Dir::Fanout] {
            for expand in [Expand::All, Expand::Combinational] {
                let seq = bfs(csr, dir, expand, roots.iter().copied(), Parallelism::Sequential);
                for workers in [2usize, 8] {
                    let par = bfs(
                        csr,
                        dir,
                        expand,
                        roots.iter().copied(),
                        Parallelism::Threads(workers),
                    );
                    prop_assert_eq!(&seq.order, &par.order, "order, {workers} workers");
                    prop_assert_eq!(
                        &seq.level_starts, &par.level_starts,
                        "levels, {workers} workers"
                    );
                }
            }
        }
        // The public cone API inherits the guarantee.
        let lits: Vec<Lit> = n.targets().iter().map(|t| t.lit).collect();
        let seq = coi_with(&n, lits.clone(), Parallelism::Sequential);
        let par = coi_with(&n, lits, Parallelism::Threads(8));
        prop_assert_eq!(&seq.regs, &par.regs);
        prop_assert_eq!(&seq.inputs, &par.inputs);
        for g in n.gates() {
            prop_assert_eq!(seq.contains(g), par.contains(g));
        }
    }

    #[test]
    fn support_leaves_are_cone_leaves(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=6,
        nr in 0usize..=8,
        na in 0usize..=60,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        let root = n.targets()[0].lit;
        let sup = analysis::support(&n, root);
        // Reference: combinational DFS that stops at regs/inputs.
        let mut seen: HashSet<Gate> = HashSet::new();
        let mut stack = vec![root.gate()];
        let mut regs = HashSet::new();
        let mut inputs = HashSet::new();
        while let Some(g) = stack.pop() {
            if !seen.insert(g) {
                continue;
            }
            match n.kind(g) {
                GateKind::And(a, b) => {
                    stack.push(a.gate());
                    stack.push(b.gate());
                }
                GateKind::Reg => {
                    regs.insert(g);
                }
                GateKind::Input => {
                    inputs.insert(g);
                }
                GateKind::Const0 => {}
            }
        }
        let got_regs: HashSet<Gate> = sup.regs.iter().copied().collect();
        let got_inputs: HashSet<Gate> = sup.inputs.iter().copied().collect();
        prop_assert_eq!(&got_regs, &regs);
        prop_assert_eq!(&got_inputs, &inputs);
    }
}

/// The CSR mirrors the netlist edge-for-edge on random netlists (not part of
/// the proptest block: one deterministic sweep across a seed range keeps the
/// failure message simple).
#[test]
fn csr_kinds_and_edges_mirror_netlist() {
    for seed in 0..32u64 {
        let n = build_netlist(seed, 4, 6, 40);
        let csr = n.csr();
        assert_eq!(csr.num_nodes(), n.num_gates());
        for g in n.gates() {
            let v = g.index() as u32;
            match n.kind(g) {
                GateKind::Const0 => assert_eq!(csr.kind(v), NodeKind::Const0),
                GateKind::Input => assert_eq!(csr.kind(v), NodeKind::Input),
                GateKind::And(a, b) => {
                    assert_eq!(csr.kind(v), NodeKind::And);
                    assert_eq!(
                        csr.fanins(v),
                        &[a.gate().index() as u32, b.gate().index() as u32]
                    );
                }
                GateKind::Reg => {
                    assert_eq!(csr.kind(v), NodeKind::Reg);
                    let mut want = vec![n.reg_next(g).gate().index() as u32];
                    if let Init::Fn(l) = n.reg_init(g) {
                        want.push(l.gate().index() as u32);
                    }
                    assert_eq!(csr.fanins(v), &want[..]);
                }
            }
            // Fanouts are sorted and reciprocal.
            let fo = csr.fanouts(v);
            assert!(fo.windows(2).all(|w| w[0] <= w[1]), "fanouts sorted");
            for &w in fo {
                assert!(
                    csr.fanins(w).contains(&v),
                    "fanout edge {v}->{w} reciprocal"
                );
            }
        }
    }
}

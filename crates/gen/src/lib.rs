//! # diam-gen (under construction)
pub mod archetypes;
pub mod gp;
pub mod iscas;
pub mod profile;
pub mod random;

//! Benchmarks for the transformation engines: redundancy removal (COM),
//! retiming (RET), state folding, and target enlargement, on the structures
//! each is designed to attack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diam_gen::archetypes::{counter, duplicate_counter, pipeline};
use diam_netlist::sim::SplitMix64;
use diam_netlist::{Init, Netlist};
use diam_transform::com::{sweep, SweepOptions};
use diam_transform::enlarge::{enlarge, EnlargeOptions};
use diam_transform::fold::{c_slow, detect, fold};
use diam_transform::retime::retime;

fn bench_com(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms/com");
    group.sample_size(10);
    for pairs in [2usize, 6, 12] {
        let mut n = Netlist::new();
        let mut obs = Vec::new();
        for k in 0..pairs {
            let en = n.input(format!("en{k}"));
            let (a, b) = duplicate_counter(&mut n, &format!("d{k}"), 5, en.lit());
            let diffs: Vec<_> = a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| n.xor(x, y))
                .collect();
            obs.push(n.or_many(diffs));
        }
        let t = n.or_many(obs);
        n.add_target(t, "any_mismatch");
        group.bench_with_input(BenchmarkId::new("duplicate_counters", pairs), &n, |b, n| {
            b.iter(|| sweep(n, &SweepOptions::default()))
        });
    }
    group.finish();
}

fn bench_retime(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms/retime");
    group.sample_size(10);
    for depth in [16usize, 64, 256] {
        let mut n = Netlist::new();
        let p = pipeline(&mut n, "p", depth);
        let cnt = counter(&mut n, "c", 4, p.tail);
        n.add_target(cnt.all_ones, "t");
        group.bench_with_input(
            BenchmarkId::new("gated_counter_depth", depth),
            &n,
            |b, n| b.iter(|| retime(n).expect("retimable")),
        );
    }
    group.finish();
}

fn bench_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms/fold");
    let mut rng = SplitMix64::new(5);
    for regs in [8usize, 32, 128] {
        // A random base design, then 2-slowed.
        let mut base = Netlist::new();
        let i = base.input("i");
        let mut pool = vec![i.lit()];
        let rs: Vec<_> = (0..regs)
            .map(|k| {
                let r = base.reg(format!("r{k}"), Init::Zero);
                pool.push(r.lit());
                r
            })
            .collect();
        for _ in 0..(2 * regs) {
            let a = pool[rng.below(pool.len() as u64) as usize];
            let b = pool[rng.below(pool.len() as u64) as usize];
            pool.push(base.and(a, b));
        }
        for &r in &rs {
            let nx = pool[rng.below(pool.len() as u64) as usize];
            base.set_next(r, nx);
        }
        base.add_target(*pool.last().unwrap(), "t");
        let slowed = c_slow(&base, 2);
        group.bench_with_input(
            BenchmarkId::new("detect_and_fold", regs),
            &slowed,
            |b, s| {
                b.iter(|| {
                    let col = detect(s, 2);
                    if col.c >= 2 {
                        let _ = fold(s, &col, 0);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_enlarge(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms/enlarge");
    for bits in [4usize, 8, 12] {
        let mut n = Netlist::new();
        let cnt = counter(&mut n, "c", bits, diam_netlist::Lit::TRUE);
        n.add_target(cnt.all_ones, "t");
        group.bench_with_input(BenchmarkId::new("counter_k2", bits), &n, |b, n| {
            b.iter(|| {
                enlarge(
                    n,
                    0,
                    &EnlargeOptions {
                        k: 2,
                        ..Default::default()
                    },
                )
                .expect("small bdd")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_com, bench_retime, bench_fold, bench_enlarge);
criterion_main!(benches);

//! Transformations turning useless diameter bounds into working proofs.
//!
//! The design: a transaction allocator whose issue signal crawls down a
//! 10-deep pipeline before enabling a wrap-around (mod-6) in-flight counter
//! and its structurally-different *shadow* copy.
//!
//! * `shadow_mismatch` — an (unreachable) equivalence-style target: plain
//!   structural bounding gives (1+10)·2^3·2^3-ish bounds, far past the
//!   useful threshold; **COM** (Theorem 1) proves the shadow equal to the
//!   main counter, the cone collapses, and BMC instantly completes a proof.
//! * `count_hits_5` — a *reachable* target: here the bound's job is to make
//!   the search **complete**. The untransformed bound `(1+10)·2^3 = 88`
//!   wildly overshoots; after **COM,RET,COM** (Theorem 2) the pipeline is
//!   absorbed into the retiming stump and the back-translated bound drops
//!   to `2^3 + 10 = 18` — and the depth-17 complete BMC finds the hit at
//!   its true depth of 15.
//!
//! Run with: `cargo run --release --example pipeline_proof`

use diam::bmc::{prove, ProveOptions, ProveOutcome};
use diam::core::{Pipeline, StructuralOptions};
use diam::netlist::{Gate, Init, Lit, Netlist};

fn build(depth: usize) -> Netlist {
    let mut n = Netlist::new();
    let issue = n.input("issue");

    // Deep issue pipeline.
    let mut en = issue.lit();
    for k in 0..depth {
        let r = n.reg(format!("issue_p{k}"), Init::Zero);
        n.set_next(r, en);
        en = r.lit();
    }

    // Mod-6 wrap-around counter, in two structural flavours.
    let wrap_counter = |n: &mut Netlist, tag: &str, en: Lit, mux_form: bool| -> Vec<Gate> {
        let bits: Vec<_> = (0..3)
            .map(|k| n.reg(format!("{tag}{k}"), Init::Zero))
            .collect();
        let at_five = {
            let hi = n.and(bits[2].lit(), !bits[1].lit());
            n.and(hi, bits[0].lit())
        };
        let clear = n.and(en, at_five);
        let en_inc = n.and(en, !at_five);
        let mut carry = en_inc;
        for b in &bits {
            let inc = if mux_form {
                n.mux(carry, !b.lit(), b.lit())
            } else {
                n.xor(b.lit(), carry)
            };
            carry = if mux_form {
                n.mux(carry, b.lit(), Lit::FALSE)
            } else {
                n.and(b.lit(), carry)
            };
            let nx = n.and(inc, !clear);
            n.set_next(*b, nx);
        }
        bits
    };
    let bits = wrap_counter(&mut n, "cnt", en, false);
    let shadow = wrap_counter(&mut n, "shd", en, true);

    // Target 0: main and shadow counters disagree (never — needs COM).
    let diffs: Vec<_> = bits
        .iter()
        .zip(&shadow)
        .map(|(b, s)| n.xor(b.lit(), s.lit()))
        .collect();
    let mismatch = n.or_many(diffs);
    n.add_target(mismatch, "shadow_mismatch");

    // Target 1: the counter reaches 5 (reachable at depth pipeline + 5).
    let is_five = {
        let hi = n.and(bits[2].lit(), !bits[1].lit());
        n.and(hi, bits[0].lit())
    };
    n.add_target(is_five, "count_hits_5");
    n
}

fn main() {
    let depth = 10;
    let n = build(depth);
    let opts = StructuralOptions::default();

    println!("issue pipeline depth {depth}, mod-6 counter + structural shadow\n");
    println!(
        "{:<14} {:>22} {:>22}",
        "", "shadow_mismatch", "count_hits_5"
    );
    for (name, pipe) in [
        ("original", Pipeline::new()),
        ("COM", Pipeline::com()),
        ("COM,RET,COM", Pipeline::com_ret_com()),
    ] {
        let b = pipe.bound_targets(&n, &opts);
        let fmt = |i: usize| {
            format!(
                "{} [{}]",
                b[i].original,
                if b[i].original.is_useful(50) {
                    "ok"
                } else {
                    "too big"
                }
            )
        };
        println!("{name:<14} {:>22} {:>22}", fmt(0), fmt(1));
    }

    println!();
    for (i, name) in [(0usize, "shadow_mismatch"), (1, "count_hits_5")] {
        match prove(&n, i, &Pipeline::com_ret_com(), &ProveOptions::default()) {
            ProveOutcome::Proved { bound } => {
                println!("PROVED {name}: complete BMC to depth {}", bound - 1);
            }
            ProveOutcome::Counterexample { depth, witness } => {
                // A complete check that *fails* yields the earliest witness.
                assert!(witness.replays_to(&n, n.targets()[i].lit));
                println!(
                    "HIT {name} at depth {depth} (witness replays on the simulator) — \
                     the search was complete, so this is the earliest hit"
                );
            }
            other => println!("{name}: unexpected outcome {other:?}"),
        }
    }
}

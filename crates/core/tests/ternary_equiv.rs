//! Differential testing of the worklist-based ternary constant propagation
//! in `classify::constant_registers` against the pre-refactor whole-netlist
//! frame iteration.
//!
//! Both compute the least fixpoint of the same monotone ternary system, so
//! their results must be identical on every netlist; the reference below is
//! the original algorithm verbatim (re-evaluate every gate per widening
//! round), kept as the easy-to-audit oracle.

use diam_core::classify::constant_registers;
use diam_netlist::sim::SplitMix64;
use diam_netlist::{Gate, GateKind, Init, Lit, Netlist};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum T {
    Zero,
    One,
    X,
}

impl T {
    fn join(self, o: T) -> T {
        if self == o {
            self
        } else {
            T::X
        }
    }
    fn comp(self, c: bool) -> T {
        match (self, c) {
            (T::Zero, true) => T::One,
            (T::One, true) => T::Zero,
            (v, _) => v,
        }
    }
}

/// The pre-refactor fixpoint: full-netlist re-sweep per widening round.
fn ref_constant_registers(n: &Netlist) -> Vec<(Gate, bool)> {
    let mut state: Vec<T> = n
        .regs()
        .iter()
        .map(|&r| match n.reg_init(r) {
            Init::Zero => T::Zero,
            Init::One => T::One,
            Init::Nondet | Init::Fn(_) => T::X,
        })
        .collect();
    let mut values = vec![T::X; n.num_gates()];
    loop {
        for (j, &r) in n.regs().iter().enumerate() {
            values[r.index()] = state[j];
        }
        for g in n.gates() {
            match n.kind(g) {
                GateKind::Const0 => values[g.index()] = T::Zero,
                GateKind::Input => values[g.index()] = T::X,
                GateKind::And(a, b) => {
                    let va = values[a.gate().index()].comp(a.is_complement());
                    let vb = values[b.gate().index()].comp(b.is_complement());
                    values[g.index()] = match (va, vb) {
                        (T::Zero, _) | (_, T::Zero) => T::Zero,
                        (T::One, T::One) => T::One,
                        _ => T::X,
                    };
                }
                GateKind::Reg => {}
            }
        }
        let mut changed = false;
        for (j, &r) in n.regs().iter().enumerate() {
            let nx = n.reg_next(r);
            let v = values[nx.gate().index()].comp(nx.is_complement());
            let joined = state[j].join(v);
            if joined != state[j] {
                state[j] = joined;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    n.regs()
        .iter()
        .zip(&state)
        .filter_map(|(&r, &t)| match t {
            T::Zero => Some((r, false)),
            T::One => Some((r, true)),
            T::X => None,
        })
        .collect()
}

/// Random sequential netlist biased toward constant-rich structure:
/// re-latching loops, constants ANDed into cones, plus free logic.
fn build_netlist(seed: u64, ni: usize, nr: usize, na: usize) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let mut n = Netlist::new();
    let inputs: Vec<Lit> = (0..ni).map(|k| n.input(format!("i{k}")).lit()).collect();
    let mut regs: Vec<Gate> = Vec::with_capacity(nr);
    for k in 0..nr {
        let init = match rng.below(3) {
            0 => Init::Zero,
            1 => Init::One,
            _ => Init::Nondet,
        };
        regs.push(n.reg(format!("r{k}"), init));
    }
    let mut pool: Vec<Lit> = vec![Lit::FALSE];
    pool.extend(&inputs);
    pool.extend(regs.iter().map(|r| r.lit()));
    for _ in 0..na {
        let a = pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1);
        let b = pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1);
        pool.push(n.and(a, b));
    }
    for (k, &r) in regs.iter().enumerate() {
        // Half the registers re-latch themselves (constant candidates);
        // the rest take random next-state functions.
        let nx = if k % 2 == 0 {
            r.lit()
        } else {
            pool[rng.below(pool.len() as u64) as usize].xor_complement(rng.below(2) == 1)
        };
        n.set_next(r, nx);
    }
    n.add_target(*pool.last().expect("nonempty pool"), "t");
    n.validate().expect("generated netlist is well-formed");
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn worklist_matches_frame_iteration(
        seed in proptest::arbitrary::any::<u64>(),
        ni in 1usize..=5,
        nr in 1usize..=14,
        na in 0usize..=70,
    ) {
        let n = build_netlist(seed, ni, nr, na);
        prop_assert_eq!(constant_registers(&n), ref_constant_registers(&n));
    }
}

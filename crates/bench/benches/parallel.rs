//! Benchmarks for the work-stealing orchestration layer: `prove_all` and
//! `Pipeline::bound_targets` over multi-target designs under Sequential vs
//! `Threads(2/4/8)`.
//!
//! The outputs are asserted identical across settings inside the benchmark
//! bodies — the parallel paths are only allowed to change wall-clock, never
//! results. Numbers land in `EXPERIMENTS.md` ("Parallel orchestration").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diam_bmc::{prove_all, ProveOptions};
use diam_core::{Pipeline, StructuralOptions};
use diam_gen::random::{random_netlist, RandomDesignOptions};
use diam_netlist::Netlist;
use diam_par::Parallelism;

/// A multi-target design large enough for per-cone slicing to matter.
fn design(targets: usize) -> Netlist {
    let opts = RandomDesignOptions {
        inputs: 4,
        regs: 10,
        gates: 60,
        targets,
        allow_nondet: true,
    };
    random_netlist(&opts, 0xBE7C)
}

fn settings() -> [(&'static str, Parallelism); 4] {
    [
        ("seq", Parallelism::Sequential),
        ("t2", Parallelism::Threads(2)),
        ("t4", Parallelism::Threads(4)),
        ("t8", Parallelism::Threads(8)),
    ]
}

fn bench_prove_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("par/prove_all");
    group.sample_size(10);
    let n = design(12);
    let pipeline = Pipeline::com_ret_com();
    let reference = prove_all(
        &n,
        &pipeline,
        &ProveOptions {
            depth_cap: 48,
            ..Default::default()
        },
    );
    for (name, par) in settings() {
        let opts = ProveOptions {
            depth_cap: 48,
            parallelism: par,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("12_targets", name), &n, |b, n| {
            b.iter(|| {
                let got = prove_all(n, &pipeline, &opts);
                assert_eq!(got, reference);
                got
            })
        });
    }
    group.finish();
}

fn bench_bound_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("par/bound_targets");
    group.sample_size(10);
    let n = design(24);
    let pipeline = Pipeline::com();
    let reference = pipeline.bound_targets(&n, &StructuralOptions::default());
    for (name, par) in settings() {
        let opts = StructuralOptions {
            parallelism: par,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("24_targets", name), &n, |b, n| {
            b.iter(|| {
                let got = pipeline.bound_targets(n, &opts);
                assert_eq!(got.len(), reference.len());
                for (a, b) in got.iter().zip(&reference) {
                    assert_eq!(a.original, b.original);
                }
                got
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prove_all, bench_bound_targets);
criterion_main!(benches);

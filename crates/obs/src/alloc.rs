//! Opt-in counting global allocator.
//!
//! Binaries that want memory accounting declare the wrapper as their global
//! allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: diam_obs::alloc::CountingAlloc = diam_obs::alloc::CountingAlloc::new();
//! ```
//!
//! and flip accounting on with [`set_mem_enabled`] (the `--mem on` flag).
//! While accounting is **off** — the default — every allocation pays exactly
//! one relaxed atomic load on top of the system allocator, mirroring the
//! observability layer's own disabled-hook contract. While **on**, each
//! allocation and deallocation bumps process-global totals *and* the calling
//! thread's attribution cells, so span close events can carry the allocator
//! work performed under them exactly like the `sat_*` attribution counters
//! (see `SpanGuard` in the crate root).
//!
//! The accounting path is reentrancy-safe by construction: it touches only
//! atomics and `Cell`s — it never allocates, locks, or calls back into the
//! recording layer (gauges are published from span close and heartbeat
//! paths, never from inside the allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static MEM_ENABLED: AtomicBool = AtomicBool::new(false);

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_FREES: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic allocator totals — process-global (from [`totals`]) or
/// per-thread (from [`thread_totals`]). Counters only ever increase while
/// accounting is on, so consumers work with deltas between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Successful allocations (including the alloc half of a realloc).
    pub allocs: u64,
    /// Deallocations (including the free half of a realloc).
    pub frees: u64,
    /// Bytes handed out.
    pub alloc_bytes: u64,
    /// Bytes returned.
    pub freed_bytes: u64,
}

impl AllocTotals {
    /// The component-wise difference `self - earlier` (saturating, so a
    /// snapshot pair straddling an accounting toggle never underflows).
    pub fn delta_since(&self, earlier: &AllocTotals) -> AllocTotals {
        AllocTotals {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            freed_bytes: self.freed_bytes.saturating_sub(earlier.freed_bytes),
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == AllocTotals::default()
    }
}

/// Turns allocation accounting on or off. Off (the default) restores the
/// single-relaxed-load fast path; totals accumulated so far are kept.
pub fn set_mem_enabled(on: bool) {
    MEM_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation accounting is currently on.
#[inline]
pub fn mem_enabled() -> bool {
    MEM_ENABLED.load(Ordering::Relaxed)
}

/// Process-global allocator totals since accounting was first enabled.
pub fn totals() -> AllocTotals {
    AllocTotals {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
    }
}

/// The calling thread's allocator totals. Thread-owned `Cell`s, so a
/// snapshot delta around a region attributes exactly the allocator work this
/// thread performed in it — the mechanism behind the `alloc_*` span fields.
pub fn thread_totals() -> AllocTotals {
    AllocTotals {
        allocs: TL_ALLOCS.with(Cell::get),
        frees: TL_FREES.with(Cell::get),
        alloc_bytes: TL_ALLOC_BYTES.with(Cell::get),
        freed_bytes: TL_FREED_BYTES.with(Cell::get),
    }
}

/// Currently live (allocated minus freed) bytes.
pub fn live_bytes() -> u64 {
    let t = totals();
    t.alloc_bytes.saturating_sub(t.freed_bytes)
}

/// High-water mark of [`live_bytes`] while accounting was on.
pub fn peak_live_bytes() -> u64 {
    PEAK_LIVE.load(Ordering::Relaxed)
}

#[inline]
fn bump(global: &AtomicU64, tl: &'static std::thread::LocalKey<Cell<u64>>, by: u64) {
    global.fetch_add(by, Ordering::Relaxed);
    // `try_with`: TLS may already be torn down on thread exit; global
    // counters still see the work, only per-thread attribution is lost.
    let _ = tl.try_with(|c| c.set(c.get() + by));
}

#[inline]
fn record_alloc(size: u64) {
    bump(&ALLOCS, &TL_ALLOCS, 1);
    bump(&ALLOC_BYTES, &TL_ALLOC_BYTES, size);
    let live = ALLOC_BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(FREED_BYTES.load(Ordering::Relaxed));
    PEAK_LIVE.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn record_free(size: u64) {
    bump(&FREES, &TL_FREES, 1);
    bump(&FREED_BYTES, &TL_FREED_BYTES, size);
}

/// A counting wrapper around [`std::alloc::System`]; see the module docs.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A wrapper instance, usable in a `#[global_allocator]` static.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the accounting
// side-band touches only atomics and thread-local `Cell`s, never the
// allocator itself, so it cannot recurse or change allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && mem_enabled() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && mem_enabled() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if mem_enabled() {
            record_free(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && mem_enabled() {
            record_free(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        p
    }
}

/// Serializes tests that toggle the process-global accounting flag.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The wrapper is exercised as a plain `GlobalAlloc` implementation —
    // installing it process-wide belongs to binaries, not to unit tests.
    #[test]
    fn counts_alloc_free_pairs_when_enabled() {
        let _serial = test_lock();
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        set_mem_enabled(true);
        let before = totals();
        let tl_before = thread_totals();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        let d = totals().delta_since(&before);
        let tld = thread_totals().delta_since(&tl_before);
        set_mem_enabled(false);
        assert!(d.allocs >= 1 && d.frees >= 1);
        assert!(d.alloc_bytes >= 256 && d.freed_bytes >= 256);
        assert_eq!(tld.allocs, 1);
        assert_eq!(tld.frees, 1);
        assert_eq!(tld.alloc_bytes, 256);
        assert_eq!(tld.freed_bytes, 256);
        assert!(peak_live_bytes() >= 256);
    }

    #[test]
    fn disabled_accounting_leaves_totals_untouched() {
        let _serial = test_lock();
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        set_mem_enabled(false);
        let tl_before = thread_totals();
        unsafe {
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(thread_totals(), tl_before);
    }

    #[test]
    fn delta_saturates_rather_than_underflowing() {
        let big = AllocTotals {
            allocs: 10,
            frees: 10,
            alloc_bytes: 100,
            freed_bytes: 100,
        };
        let d = AllocTotals::default().delta_since(&big);
        assert!(d.is_zero());
    }
}

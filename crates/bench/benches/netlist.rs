//! Benchmarks for the CSR netlist substrate: binary-AIGER parsing, cone of
//! influence, and register classification on the deterministic `large`
//! archetype. The criterion harness runs at a moderate size so it stays
//! iterable; the full 1M-gate scaling numbers live in `BENCH_pr9.json`
//! (produced by `benchreport --suite netlist`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diam_core::classify::{classify, ClassifyOptions};
use diam_gen::large::{large, LargeOptions};
use diam_netlist::{aiger, analysis, Netlist};

const SIZES: [usize; 2] = [30_000, 120_000];

fn build(min_gates: usize) -> Netlist {
    large(&LargeOptions {
        min_gates,
        seed: 0xD1A4,
    })
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/parse_binary");
    group.sample_size(10);
    for size in SIZES {
        let n = build(size);
        let mut buf = Vec::new();
        aiger::write_binary(&n, &mut buf).expect("binary write");
        group.bench_with_input(BenchmarkId::new("gates", size), &buf, |b, buf| {
            b.iter(|| aiger::read(std::io::Cursor::new(buf.as_slice())).expect("parse"))
        });
    }
    group.finish();
}

fn bench_coi(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/coi");
    group.sample_size(10);
    for size in SIZES {
        let n = build(size);
        let parity = n.targets()[0].lit;
        // Warm the CSR cache so the bench isolates traversal, not build.
        let _ = n.csr();
        group.bench_with_input(BenchmarkId::new("parity", size), &n, |b, n| {
            b.iter(|| analysis::coi(n, [parity]))
        });
    }
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/classify");
    group.sample_size(10);
    for size in SIZES {
        let n = build(size);
        let parity = n.targets()[0].lit;
        let cone = analysis::coi(&n, [parity]);
        group.bench_with_input(BenchmarkId::new("parity_cone", size), &n, |b, n| {
            b.iter(|| classify(n, &cone.regs, &ClassifyOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_coi, bench_classify);
criterion_main!(benches);

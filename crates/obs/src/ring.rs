//! Always-on lock-free flight recorder.
//!
//! Every thread that calls [`note`] owns a fixed-size ring of the most
//! recent [`RingEntry`] records. The owner thread is the only writer; each
//! slot is protected by a seqlock stamp (odd while a write is in flight), so
//! a crash-dump snapshot taken from *any* thread — including a panic hook —
//! reads the rings without locks and detects torn slots instead of
//! publishing them. Old entries are overwritten; overwritten and torn
//! entries are *counted* (like `Exchange::dropped` in `diam-par`), never
//! silently lost.
//!
//! The recorder has no on/off switch and produces **zero output**: with
//! `--obs off` nothing ever reads it except a crash dump. A `note` costs a
//! few atomic stores into thread-owned cache lines, cheap enough for the
//! coarse hook points that feed it (worker lifecycle, job starts, span
//! transitions while a session records, panics).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Entries retained per thread.
pub const RING_CAPACITY: usize = 128;

/// How a ring entry was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RingKind {
    /// A span opened (`a` = span id).
    SpanOpen = 0,
    /// A span closed (`a` = span id, `b` = duration in ns).
    SpanClose = 1,
    /// A point event inside a span (`a` = span id).
    Point = 2,
    /// An executor job started (`a` = job index).
    Job = 3,
    /// A worker thread started or stopped (`a` = 1 start / 0 stop).
    Worker = 4,
    /// A panic was recorded (`a` = job index when known).
    Panic = 5,
    /// Free-form marker.
    Note = 6,
}

impl RingKind {
    fn from_u8(v: u8) -> RingKind {
        match v {
            0 => RingKind::SpanOpen,
            1 => RingKind::SpanClose,
            2 => RingKind::Point,
            3 => RingKind::Job,
            4 => RingKind::Worker,
            5 => RingKind::Panic,
            _ => RingKind::Note,
        }
    }

    /// Stable lower-snake name, used in crash dumps.
    pub fn name(self) -> &'static str {
        match self {
            RingKind::SpanOpen => "span_open",
            RingKind::SpanClose => "span_close",
            RingKind::Point => "point",
            RingKind::Job => "job",
            RingKind::Worker => "worker",
            RingKind::Panic => "panic",
            RingKind::Note => "note",
        }
    }
}

/// One flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEntry {
    /// Global stamp order (allocation order across all threads).
    pub seq: u64,
    /// Nanoseconds since the recorder's first use in this process.
    pub ts_ns: u64,
    /// Worker tag of the recording thread (0 = untagged / main).
    pub worker: u32,
    /// Entry kind.
    pub kind: RingKind,
    /// Event or span name.
    pub name: &'static str,
    /// Kind-specific payload (see [`RingKind`]).
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

/// A merged snapshot of every thread's ring, oldest first.
#[derive(Debug, Clone, Default)]
pub struct RingSnapshot {
    /// Surviving entries across all rings, sorted by `seq`.
    pub entries: Vec<RingEntry>,
    /// Entries overwritten before the snapshot (summed over rings).
    pub dropped: u64,
    /// Slots skipped because a concurrent write could not be read cleanly.
    pub torn: u64,
}

#[derive(Clone, Copy)]
struct Pod {
    seq: u64,
    ts_ns: u64,
    worker: u32,
    kind: u8,
    name: &'static str,
    a: u64,
    b: u64,
}

const EMPTY: Pod = Pod {
    seq: 0,
    ts_ns: 0,
    worker: 0,
    kind: 0,
    name: "",
    a: 0,
    b: 0,
};

struct Slot {
    /// Seqlock stamp: odd while the owner thread is writing the slot.
    stamp: AtomicU64,
    data: UnsafeCell<Pod>,
}

struct ThreadRing {
    /// Number of entries ever written; the next write lands in
    /// `head % RING_CAPACITY`.
    head: AtomicU64,
    slots: Vec<Slot>,
}

// SAFETY: `data` is written only by the ring's owner thread, bracketed by
// odd/even `stamp` transitions; concurrent readers validate the stamp around
// each read and discard torn values. See `ThreadRing::push` / `read_slot`.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

impl ThreadRing {
    fn new() -> ThreadRing {
        ThreadRing {
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    stamp: AtomicU64::new(0),
                    data: UnsafeCell::new(EMPTY),
                })
                .collect(),
        }
    }

    /// Owner-thread write: claim the slot (odd stamp), store, release (even
    /// stamp), then publish the new head.
    fn push(&self, pod: Pod) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % RING_CAPACITY as u64) as usize];
        slot.stamp.fetch_add(1, Ordering::Release);
        // SAFETY: single writer (this is the owner thread), and the odd
        // stamp above tells every reader the slot is in flux.
        unsafe { *slot.data.get() = pod };
        slot.stamp.fetch_add(1, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Cross-thread read of one slot; `None` when the slot stayed torn
    /// across the retry budget.
    fn read_slot(&self, idx: usize) -> Option<Pod> {
        let slot = &self.slots[idx];
        for _ in 0..8 {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: the matching-even-stamp check below rejects any value
            // the owner thread overwrote while we copied it.
            let pod = unsafe { *slot.data.get() };
            if slot.stamp.load(Ordering::Acquire) == s1 {
                return Some(pod);
            }
        }
        None
    }

    /// Surviving entries (oldest first), entries lost to overwrite, and
    /// slots lost to tearing.
    fn snapshot(&self) -> (Vec<RingEntry>, u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let kept = head.min(RING_CAPACITY as u64);
        let dropped = head - kept;
        let mut torn = 0u64;
        let mut entries = Vec::with_capacity(kept as usize);
        for i in 0..kept {
            let idx = ((head - kept + i) % RING_CAPACITY as u64) as usize;
            match self.read_slot(idx) {
                Some(pod) => entries.push(RingEntry {
                    seq: pod.seq,
                    ts_ns: pod.ts_ns,
                    worker: pod.worker,
                    kind: RingKind::from_u8(pod.kind),
                    name: pod.name,
                    a: pod.a,
                    b: pod.b,
                }),
                None => torn += 1,
            }
        }
        (entries, dropped, torn)
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static START: OnceLock<Instant> = OnceLock::new();
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

thread_local! {
    static TL_RING: OnceLock<Arc<ThreadRing>> = const { OnceLock::new() };
    static TL_WORKER: AtomicU32 = const { AtomicU32::new(0) };
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn ts_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Tags the calling thread's future ring entries with `worker` (0 = main;
/// `diam-par` workers use `index + 1`). Unlike the session-scoped
/// `set_worker`, this sticks even with `--obs off` so crash dumps can name
/// the worker.
pub fn set_ring_worker(worker: u32) {
    let _ = TL_WORKER.try_with(|w| w.store(worker, Ordering::Relaxed));
}

/// The calling thread's ring worker tag.
pub fn ring_worker() -> u32 {
    TL_WORKER
        .try_with(|w| w.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Appends an entry to the calling thread's ring (registering the ring on
/// first use). Never blocks other note-takers; never produces output.
pub fn note(kind: RingKind, name: &'static str, a: u64, b: u64) {
    let pod = Pod {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns: ts_ns(),
        worker: ring_worker(),
        kind: kind as u8,
        name,
        a,
        b,
    };
    let _ = TL_RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new());
            unpoison(RINGS.lock()).push(ring.clone());
            ring
        });
        ring.push(pod);
    });
}

/// Merges every registered ring into one seq-ordered snapshot. Safe to call
/// from any thread at any time, including a panic hook.
pub fn snapshot_all() -> RingSnapshot {
    let rings: Vec<Arc<ThreadRing>> = unpoison(RINGS.lock()).clone();
    let mut snap = RingSnapshot::default();
    for ring in rings {
        let (entries, dropped, torn) = ring.snapshot();
        snap.entries.extend(entries);
        snap.dropped += dropped;
        snap.torn += torn;
    }
    snap.entries.sort_by_key(|e| e.seq);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_survive_in_order_and_count_overwrites() {
        let ring = ThreadRing::new();
        let n = RING_CAPACITY as u64 + 17;
        for i in 0..n {
            ring.push(Pod {
                seq: i,
                ts_ns: i,
                worker: 0,
                kind: RingKind::Note as u8,
                name: "t",
                a: i,
                b: 0,
            });
        }
        let (entries, dropped, torn) = ring.snapshot();
        assert_eq!(torn, 0);
        assert_eq!(dropped, 17);
        assert_eq!(entries.len(), RING_CAPACITY);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (17..n).collect();
        assert_eq!(seqs, expect, "oldest surviving entry is seq 17");
    }

    #[test]
    fn thread_notes_land_in_global_snapshot() {
        note(RingKind::Note, "ring.test.marker", 41, 42);
        let snap = snapshot_all();
        assert!(snap
            .entries
            .iter()
            .any(|e| e.name == "ring.test.marker" && e.a == 41 && e.b == 42));
    }
}

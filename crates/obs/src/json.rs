//! A minimal, std-only JSON value model: enough to *write* the JSONL trace
//! format and to *parse it back* for validation (`tracecheck`, the schema
//! round-trip tests). Not a general-purpose JSON library — numbers outside
//! `i128` and non-BMP escapes beyond `\uXXXX` pairs are out of scope.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number (no `.`, `e`, or `E` in the source).
    Int(i128),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order normalized to a map).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a float (integral sources convert too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// This value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Object(_))
    }
}

/// Escapes `s` into `out` as a JSON string literal (including the quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first offending byte.
///
/// # Examples
///
/// ```
/// use diam_obs::json::{parse, JsonValue};
///
/// let v = parse(r#"{"ts": 12, "name": "com.sweep", "ok": true}"#).unwrap();
/// assert_eq!(v.get("ts").and_then(|t| t.as_u64()), Some(12));
/// assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("com.sweep"));
/// ```
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices at
                    // char boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|_| self.err("number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), JsonValue::Float(2000.0));
        assert_eq!(
            parse(r#"[1, "two", [3]]"#).unwrap(),
            JsonValue::Array(vec![
                JsonValue::Int(1),
                JsonValue::Str("two".into()),
                JsonValue::Array(vec![JsonValue::Int(3)]),
            ])
        );
        let obj = parse(r#"{"a": {"b": 1}}"#).unwrap();
        assert_eq!(
            obj.get("a")
                .and_then(|a| a.get("b"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "line\nbreak \"quoted\" back\\slash tab\t unicode é 日本";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        assert_eq!(parse(&out).unwrap(), JsonValue::Str(nasty.to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_sized_timestamps_survive() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"ts\": {big}}}")).unwrap();
        assert_eq!(v.get("ts").and_then(JsonValue::as_u64), Some(big));
    }
}

//! Per-target bound probe for a single suite design — handy when tuning
//! the generator or investigating a table row.
//!
//! Usage: `cargo run -p diam-bench --release --bin probe <DESIGN> [column 0|1|2] [table 1|2]`
use diam_core::{Pipeline, StructuralOptions};
use diam_gen::gp;
use diam_gen::iscas;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "S4863".into());
    let col: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let table: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let suite = if table == 2 {
        gp::suite(1)
    } else {
        iscas::suite(1)
    };
    let (p, n) = suite.iter().find(|(p, _)| p.name == name).expect("design");
    println!(
        "{}: {} gates, {} regs, {} targets",
        p.name,
        n.num_gates(),
        n.num_regs(),
        n.targets().len()
    );
    let pipe = match col {
        0 => Pipeline::new(),
        1 => Pipeline::com(),
        _ => Pipeline::com_ret_com(),
    };
    let t0 = std::time::Instant::now();
    let bounds = pipe.bound_targets(n, &StructuralOptions::default());
    println!("column {col} took {:?}", t0.elapsed());
    for b in &bounds {
        println!(
            "  {:<28} transformed={:<8} original={}",
            b.name,
            b.transformed.to_string(),
            b.original
        );
    }
}

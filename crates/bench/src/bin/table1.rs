//! Regenerates Table 1 of the paper (ISCAS89-profile suite): register
//! classification and useful-diameter-bound counts under Original, COM, and
//! COM,RET,COM.
//!
//! Usage: `cargo run -p diam-bench --release --bin table1 [seed] [--jobs <N|seq|auto>]
//! [--obs off|summary|json|live] [--trace-out <path.jsonl>] [--mem on|off] [--limit <N>] [--ecc on|off|k=<N>]`

use diam_bench::{format_sigma, parse_cli, run_suite_opts};
// Memory accounting (`--mem on`) needs the counting allocator installed
// process-wide; while `--mem off` (the default) it costs one relaxed
// atomic load per allocation.
#[global_allocator]
static ALLOC: diam_obs::alloc::CountingAlloc = diam_obs::alloc::CountingAlloc::new();

use diam_gen::iscas;

fn main() {
    let cli = parse_cli(
        "table1 [seed] [--jobs <N|seq|auto>] [--obs off|summary|json|live] \
         [--trace-out <path.jsonl>] [--mem on|off] [--limit <N>] [--ecc on|off|k=<N>]",
    );
    let session = cli.session("table1");
    println!(
        "Table 1: diameter bounding experiments, ISCAS89-profile suite (seed {}, jobs {})\n",
        cli.seed, cli.jobs
    );
    let suite = cli.clamp(iscas::suite(cli.seed));
    let sigma = run_suite_opts(&suite, true, cli.jobs, &cli.ecc);
    println!("\n{}", format_sigma(&sigma, iscas::TABLE1_SIGMA));
    cli.finish(session);
}

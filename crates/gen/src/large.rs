//! The `large` archetype: deterministic million-gate netlists for scaling
//! experiments on the CSR substrate.
//!
//! The design is a tiled composition of the existing archetypes — mixer
//! pipelines (AC), register files and FIFOs (MC/QC), binary counters (GC) —
//! chained *sequentially*: every cross-tile link is a register output or a
//! shallow fold of register outputs, so combinational depth stays bounded
//! (tile-local) no matter how many tiles are emitted. One parity target folds an observation bit of every
//! tile, which makes its cone of influence span the whole netlist: a cone
//! traversal, levelization, or classification of that target is a full-graph
//! workout for the visit engine.
//!
//! Generation is a pure function of [`LargeOptions`]: the same options
//! always produce a structurally identical netlist (equal
//! [`diam_netlist::stats::fingerprint`]), which is what lets benchmark runs
//! on different machines and different days talk about the same design.

use crate::archetypes::{counter, fifo, pipeline_from, register_file};
use diam_netlist::sim::SplitMix64;
use diam_netlist::{Lit, Netlist};

/// Options for [`large`].
#[derive(Debug, Clone)]
pub struct LargeOptions {
    /// Stop emitting tiles once the gate count reaches this floor.
    pub min_gates: usize,
    /// Seed for the (deterministic) structural choices inside mixer tiles.
    pub seed: u64,
}

impl Default for LargeOptions {
    fn default() -> LargeOptions {
        LargeOptions {
            min_gates: 1_000_000,
            seed: 0xD1A4,
        }
    }
}

/// Width of a mixer tile layer (gates per layer).
const MIX_WIDTH: usize = 64;
/// Layers per mixer tile — also the tile's combinational depth.
const MIX_DEPTH: usize = 16;

/// Builds a deterministic netlist with at least `opts.min_gates` gates.
///
/// The result has a single `parity` target whose cone of influence covers
/// every tile, plus one `head` target observing only the first tile (a
/// near-empty cone, as a contrast case for per-target slicing).
pub fn large(opts: &LargeOptions) -> Netlist {
    let mut n = Netlist::new();
    let mut rng = SplitMix64::new(opts.seed);
    // One observation literal per tile — a register output or a shallow
    // fold of them, so chaining tiles through `obs` never deepens the logic
    // beyond a tile-local constant.
    let mut obs: Vec<Lit> = Vec::new();
    let mut prev = Lit::FALSE;
    let mut block = 0usize;
    while n.num_gates() < opts.min_gates {
        let name = format!("blk{block}");
        // Each tile observes a fold of ALL its state bits, so the parity
        // target's cone provably covers every register and input emitted.
        let tile_obs = match block % 16 {
            5 => {
                let f = fifo(&mut n, &name, 8);
                let cells: Vec<Lit> = f.cells.iter().map(|r| r.lit()).collect();
                xor_reduce(&mut n, &cells)
            }
            10 => {
                let m = register_file(&mut n, &name, 8, 4);
                let cells: Vec<Lit> = m.all_cells().iter().map(|r| r.lit()).collect();
                xor_reduce(&mut n, &cells)
            }
            15 => {
                let c = counter(&mut n, &name, 16, prev);
                c.all_ones
            }
            _ => mixer_tile(&mut n, &name, prev, &mut rng),
        };
        obs.push(tile_obs);
        prev = tile_obs;
        block += 1;
    }
    // Fold every tile's observation bit into one parity target; its cone is
    // the entire netlist.
    let parity = xor_reduce(&mut n, &obs);
    n.add_target(parity, "parity");
    n.add_target(obs[0], "head");
    n
}

/// A mixer tile: a `MIX_WIDTH × MIX_DEPTH` layered blend of fresh inputs,
/// the previous tile's observation bit, and tile-local feedback registers,
/// drained through a short pipeline. Layered structure (each layer reads
/// only the one before it) caps the tile's combinational depth at
/// `MIX_DEPTH`.
fn mixer_tile(n: &mut Netlist, name: &str, prev: Lit, rng: &mut SplitMix64) -> Lit {
    let inputs: Vec<Lit> = (0..4)
        .map(|k| n.input(format!("{name}_i{k}")).lit())
        .collect();
    let mut layer = inputs.clone();
    layer.push(prev);
    for d in 0..MIX_DEPTH {
        let mut next = Vec::with_capacity(MIX_WIDTH);
        for _ in 0..MIX_WIDTH {
            let a = layer[rng.below(layer.len() as u64) as usize];
            let b = layer[rng.below(layer.len() as u64) as usize];
            next.push(match rng.below(3) {
                0 => n.and(a, b),
                1 => n.or(a, b),
                _ => n.xor(a, b),
            });
        }
        // Keep one representative of the old layer so constants from
        // strashing collapses cannot starve a layer.
        next.push(layer[d % layer.len()]);
        layer = next;
    }
    // Fold the inputs back in before the drain pipeline: random picks alone
    // cannot guarantee every input survives into the tail's cone.
    let mut folded = *layer.last().expect("nonempty layer");
    for &i in &inputs {
        folded = n.xor(folded, i);
    }
    let regs = pipeline_from(n, name, folded, 4);
    regs[3].lit()
}

/// Balanced XOR reduction of `lits` (logarithmic depth).
fn xor_reduce(n: &mut Netlist, lits: &[Lit]) -> Lit {
    let mut level: Vec<Lit> = lits.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    n.xor(c[0], c[1])
                } else {
                    c[0]
                }
            })
            .collect();
    }
    level.first().copied().unwrap_or(Lit::FALSE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diam_netlist::stats::fingerprint;

    #[test]
    fn generation_is_deterministic() {
        let opts = LargeOptions {
            min_gates: 20_000,
            seed: 7,
        };
        let a = large(&opts);
        let b = large(&opts);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(a.num_gates() >= 20_000);
        a.validate().unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            large(&LargeOptions {
                min_gates: 10_000,
                seed,
            })
        };
        assert_ne!(fingerprint(&mk(1)), fingerprint(&mk(2)));
    }

    #[test]
    fn parity_cone_spans_the_netlist() {
        let n = large(&LargeOptions {
            min_gates: 30_000,
            seed: 3,
        });
        let parity = n.targets()[0].lit;
        let cone = diam_netlist::analysis::coi(&n, [parity]);
        // Every register and every input feeds the parity target.
        assert_eq!(cone.regs.len(), n.num_regs());
        assert_eq!(cone.inputs.len(), n.num_inputs());
        // The head target sees only the first tile.
        let head = diam_netlist::analysis::coi(&n, [n.targets()[1].lit]);
        assert!(head.regs.len() < cone.regs.len() / 10);
    }
}

//! State-folding abstractions: **phase abstraction** and **c-slow
//! abstraction** (Section 3.3 of the paper, Theorem 3).
//!
//! Both apply to netlists whose registers can be *c-colored* such that a
//! register of color `i` combinationally fans out only to registers of color
//! `(i + 1) mod c`. Folding keeps one color of registers and turns every
//! other register into a combinational feed-through of its next-state
//! function, temporally folding the netlist modulo `c`: one folded step
//! corresponds to `c` original steps.
//!
//! Consequently a diameter bound `d̂` computed on the folded netlist
//! back-translates as `c · d̂` for the original (Theorem 3).
//!
//! Phase abstraction is the same folding applied to netlists derived from
//! two-phase level-sensitive latch designs — in this library latches are
//! modeled as edge-triggered registers per phase color, which is precisely
//! the intermediate form phase abstraction produces.

use diam_netlist::analysis::{reg_graph, RegGraph};
use diam_netlist::{Gate, GateKind, Init, Lit, Netlist};
use std::fmt;

/// A register c-coloring.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// The folding factor. `1` means no useful folding exists.
    pub c: u32,
    /// Color per register (parallel to [`Netlist::regs`]).
    pub colors: Vec<u32>,
}

/// Error returned by [`fold`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldError {
    /// The provided coloring violates the `(i+1) mod c` fan-out condition.
    InvalidColoring { from: Gate, to: Gate },
    /// `c` must be at least 2 to fold anything.
    TrivialFactor,
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::InvalidColoring { from, to } => {
                write!(f, "coloring violated on register edge {from} -> {to}")
            }
            FoldError::TrivialFactor => write!(f, "folding factor must be >= 2"),
        }
    }
}

impl std::error::Error for FoldError {}

/// Detects the largest folding factor of `n` and a consistent coloring.
///
/// The factor is the gcd of all register-cycle length discrepancies in the
/// register dependency graph. When the graph is acyclic every factor is
/// consistent; `preferred_acyclic` (usually 2 for two-phase designs) is used
/// then. Returns `c = 1` when no non-trivial folding exists (e.g. a register
/// with a combinational self-loop).
pub fn detect(n: &Netlist, preferred_acyclic: u32) -> Coloring {
    let regs: Vec<Gate> = n.regs().to_vec();
    let g = reg_graph(n, &regs);
    let (levels, gcd) = level_assignment(&g);
    let c = if gcd == 0 {
        preferred_acyclic.max(1)
    } else {
        u32::try_from(gcd).unwrap_or(1)
    };
    if c < 2 {
        return Coloring {
            c: 1,
            colors: vec![0; regs.len()],
        };
    }
    let colors = levels
        .iter()
        .map(|&l| (l.rem_euclid(c as i64)) as u32)
        .collect();
    Coloring { c, colors }
}

/// BFS level assignment over the undirected register graph; returns per-reg
/// levels and the gcd of all edge discrepancies (0 if none).
fn level_assignment(g: &RegGraph) -> (Vec<i64>, i64) {
    let n = g.len();
    let mut level = vec![i64::MIN; n];
    let mut gcd: i64 = 0;
    for start in 0..n {
        if level[start] != i64::MIN {
            continue;
        }
        level[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &w in g.succs(v) {
                let w = w as usize;
                if level[w] == i64::MIN {
                    level[w] = level[v] + 1;
                    queue.push_back(w);
                } else {
                    gcd = gcd_i64(gcd, level[v] + 1 - level[w]);
                }
            }
            for &u in g.preds(v) {
                let u = u as usize;
                if level[u] == i64::MIN {
                    level[u] = level[v] - 1;
                    queue.push_back(u);
                } else {
                    gcd = gcd_i64(gcd, level[u] + 1 - level[v]);
                }
            }
        }
    }
    (level, gcd.abs())
}

fn gcd_i64(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The result of folding.
#[derive(Debug, Clone)]
pub struct Folded {
    /// The folded netlist.
    pub netlist: Netlist,
    /// Old gate → new literal (registers of dropped colors map to their
    /// expanded next-state functions).
    pub map: Vec<Option<Lit>>,
    /// The folding factor; diameter bounds multiply by this (Theorem 3).
    pub c: u32,
    /// Registers before folding.
    pub regs_before: usize,
    /// Registers kept.
    pub regs_after: usize,
}

impl Folded {
    /// Maps an original literal into the folded netlist.
    pub fn lit(&self, old: Lit) -> Option<Lit> {
        self.map[old.gate().index()].map(|l| l.xor_complement(old.is_complement()))
    }
}

/// Folds `n` modulo `coloring.c`, keeping only registers of color `keep`.
///
/// # Errors
///
/// Fails if the coloring violates the fan-out condition or `c < 2`.
///
/// # Examples
///
/// ```
/// use diam_netlist::{Init, Netlist};
/// use diam_transform::fold::{detect, fold};
///
/// // A 2-slowed toggle: two registers in a loop.
/// let mut n = Netlist::new();
/// let a = n.reg("a", Init::Zero);
/// let b = n.reg("b", Init::Zero);
/// n.set_next(a, !b.lit());
/// n.set_next(b, a.lit());
/// n.add_target(a.lit(), "t");
/// let coloring = detect(&n, 2);
/// assert_eq!(coloring.c, 2);
/// let folded = fold(&n, &coloring, 0)?;
/// assert_eq!(folded.netlist.num_regs(), 1);
/// # Ok::<(), diam_transform::fold::FoldError>(())
/// ```
pub fn fold(n: &Netlist, coloring: &Coloring, keep: u32) -> Result<Folded, FoldError> {
    // Observability: the pass framework wraps this engine in the unified
    // `pass.apply` span (see `crate::pass`); no ad-hoc span here.
    let c = coloring.c;
    if c < 2 {
        return Err(FoldError::TrivialFactor);
    }
    // Validate the coloring.
    let regs: Vec<Gate> = n.regs().to_vec();
    let g = reg_graph(n, &regs);
    for u in 0..g.len() {
        for &v in g.succs(u) {
            let v = v as usize;
            if (coloring.colors[u] + 1) % c != coloring.colors[v] {
                return Err(FoldError::InvalidColoring {
                    from: regs[u],
                    to: regs[v],
                });
            }
        }
    }
    // Precomputed gate → register-position map: `color_of` is hit once per
    // register fanin during translation, so the old `position()` scan made
    // eligibility and folding O(regs²) on register-heavy designs.
    let mut reg_pos = vec![usize::MAX; n.num_gates()];
    for (j, &r) in regs.iter().enumerate() {
        reg_pos[r.index()] = j;
    }
    let color_of = move |r: Gate| -> u32 { coloring.colors[reg_pos[r.index()]] };

    let mut out = Netlist::new();
    let mut map: Vec<Option<Lit>> = vec![None; n.num_gates()];
    map[Gate::CONST0.index()] = Some(Lit::FALSE);
    for &i in n.inputs() {
        let ni = out.input(n.name(i).unwrap_or("in").to_string());
        map[i.index()] = Some(ni.lit());
    }
    // Kept registers exist up front (their next functions may form cycles).
    let kept: Vec<Gate> = regs
        .iter()
        .copied()
        .filter(|&r| color_of(r) == keep)
        .collect();
    for &r in &kept {
        let init = n.reg_init(r); // Fn cones translated below
        let nr = out.reg(n.name(r).unwrap_or("reg").to_string(), init);
        map[r.index()] = Some(nr.lit());
    }

    // Memoized translation; dropped-color registers expand to their
    // next-state functions (recursion is bounded by the color distance to
    // `keep`, since any register cycle passes through every color).
    fn translate(
        n: &Netlist,
        out: &mut Netlist,
        map: &mut Vec<Option<Lit>>,
        color_of: &dyn Fn(Gate) -> u32,
        keep: u32,
        l: Lit,
    ) -> Lit {
        if let Some(t) = map[l.gate().index()] {
            return t.xor_complement(l.is_complement());
        }
        let g = l.gate();
        let plain = match n.kind(g) {
            GateKind::Const0 => Lit::FALSE,
            GateKind::Input => unreachable!("inputs pre-mapped"),
            GateKind::And(a, b) => {
                let ta = translate(n, out, map, color_of, keep, a);
                let tb = translate(n, out, map, color_of, keep, b);
                out.and(ta, tb)
            }
            GateKind::Reg => {
                debug_assert_ne!(color_of(g), keep, "kept registers pre-mapped");
                translate(n, out, map, color_of, keep, n.reg_next(g))
            }
        };
        map[g.index()] = Some(plain);
        plain.xor_complement(l.is_complement())
    }

    // Connect kept registers.
    for &r in &kept {
        let next = translate(n, &mut out, &mut map, &color_of, keep, n.reg_next(r));
        let nr = map[r.index()].expect("kept register mapped").gate();
        out.set_next(nr, next);
        if let Init::Fn(l) = n.reg_init(r) {
            let tl = translate(n, &mut out, &mut map, &color_of, keep, l);
            out.set_init(nr, Init::Fn(tl));
        }
    }
    // Targets.
    for t in n.targets() {
        let l = translate(n, &mut out, &mut map, &color_of, keep, t.lit);
        out.add_target(l, t.name.clone());
    }

    let regs_after = out.num_regs();
    Ok(Folded {
        netlist: out,
        map,
        c,
        regs_before: n.num_regs(),
        regs_after,
    })
}

/// Phase abstraction as a one-call convenience: detects a 2-colorable
/// register structure (the synchronous model of a two-phase level-sensitive
/// latch design) and folds it, keeping the color observed by the first
/// target's support. Returns `None` when the netlist is not two-phase or a
/// target mixes colors (Theorem 3 only speaks about identically-colored
/// vertex sets).
pub fn phase_abstract(n: &Netlist) -> Option<Folded> {
    let coloring = detect(n, 2);
    if coloring.c < 2 {
        return None;
    }
    // Find the color the targets observe; bail out on mixed support. The
    // gate → register-position map keeps this linear in the support size.
    let mut reg_pos = vec![usize::MAX; n.num_gates()];
    for (j, &r) in n.regs().iter().enumerate() {
        reg_pos[r.index()] = j;
    }
    let mut keep: Option<u32> = None;
    for t in n.targets() {
        let sup = diam_netlist::analysis::support(n, t.lit);
        for r in sup.regs {
            let c = coloring.colors[reg_pos[r.index()]];
            match keep {
                None => keep = Some(c),
                Some(k) if k != c => return None,
                _ => {}
            }
        }
    }
    fold(n, &coloring, keep.unwrap_or(0)).ok()
}

/// The inverse construction used for testing and workload generation:
/// *c-slows* a netlist by replacing every register with `c` registers in
/// series, each initialized like the original. The result folds back to a
/// netlist trace-equivalent to the input.
pub fn c_slow(n: &Netlist, c: u32) -> Netlist {
    assert!(c >= 1, "c-slow factor must be positive");
    let mut out = Netlist::new();
    let mut map: Vec<Option<Lit>> = vec![None; n.num_gates()];
    map[Gate::CONST0.index()] = Some(Lit::FALSE);
    for &i in n.inputs() {
        let ni = out.input(n.name(i).unwrap_or("in").to_string());
        map[i.index()] = Some(ni.lit());
    }
    // Each original register becomes a chain of c registers; the chain tail
    // is the visible value.
    let mut chains: Vec<Vec<Gate>> = Vec::new();
    for &r in n.regs() {
        let name = n.name(r).unwrap_or("reg");
        let chain: Vec<Gate> = (0..c)
            .map(|k| out.reg(format!("{name}_p{k}"), n.reg_init(r)))
            .collect();
        map[r.index()] = Some(chain[c as usize - 1].lit());
        chains.push(chain);
    }
    // Combinational logic in index order (inputs/regs mapped already).
    for g in n.gates() {
        if let GateKind::And(a, b) = n.kind(g) {
            let ta = map[a.gate().index()]
                .expect("fanin mapped")
                .xor_complement(a.is_complement());
            let tb = map[b.gate().index()]
                .expect("fanin mapped")
                .xor_complement(b.is_complement());
            map[g.index()] = Some(out.and(ta, tb));
        }
    }
    for (chain, &r) in chains.iter().zip(n.regs()) {
        let next = n.reg_next(r);
        let tn = map[next.gate().index()]
            .expect("next mapped")
            .xor_complement(next.is_complement());
        out.set_next(chain[0], tn);
        for k in 1..c as usize {
            out.set_next(chain[k], chain[k - 1].lit());
        }
        if let Init::Fn(l) = n.reg_init(r) {
            let tl = map[l.gate().index()]
                .expect("init cone mapped")
                .xor_complement(l.is_complement());
            for &cr in chain {
                out.set_init(cr, Init::Fn(tl));
            }
        }
    }
    for t in n.targets() {
        let l = map[t.lit.gate().index()]
            .expect("target mapped")
            .xor_complement(t.lit.is_complement());
        out.add_target(l, t.name.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diam_netlist::sim::{simulate, SplitMix64, Stimulus};

    fn small_design(seed: u64) -> Netlist {
        let mut rng = SplitMix64::new(seed);
        let mut n = Netlist::new();
        let mut pool: Vec<Lit> = (0..2).map(|k| n.input(format!("i{k}")).lit()).collect();
        let mut regs = Vec::new();
        for k in 0..3 {
            let r = n.reg(format!("r{k}"), if k == 1 { Init::One } else { Init::Zero });
            regs.push(r);
            pool.push(r.lit());
        }
        for _ in 0..8 {
            let a = pool[rng.below(pool.len() as u64) as usize];
            let b = pool[rng.below(pool.len() as u64) as usize];
            pool.push(match rng.below(3) {
                0 => n.and(a, b),
                1 => n.or(a, b),
                _ => n.xor(a, b),
            });
        }
        for &r in &regs {
            let nx = pool[rng.below(pool.len() as u64) as usize];
            n.set_next(r, nx);
        }
        n.add_target(*pool.last().unwrap(), "t");
        n
    }

    #[test]
    fn detect_finds_two_slow_loop() {
        let mut n = Netlist::new();
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        n.set_next(a, !b.lit());
        n.set_next(b, a.lit());
        n.add_target(a.lit(), "t");
        let col = detect(&n, 2);
        assert_eq!(col.c, 2);
        assert_ne!(col.colors[0], col.colors[1]);
    }

    #[test]
    fn self_loop_prevents_folding() {
        let mut n = Netlist::new();
        let r = n.reg("r", Init::Zero);
        n.set_next(r, !r.lit());
        n.add_target(r.lit(), "t");
        let col = detect(&n, 2);
        assert_eq!(col.c, 1);
    }

    #[test]
    fn acyclic_uses_preferred_factor() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        n.set_next(a, i.lit());
        n.set_next(b, a.lit());
        n.add_target(b.lit(), "t");
        let col = detect(&n, 2);
        assert_eq!(col.c, 2);
        let folded = fold(&n, &col, col.colors[1]).unwrap();
        assert_eq!(folded.netlist.num_regs(), 1);
    }

    #[test]
    fn invalid_coloring_is_rejected() {
        let mut n = Netlist::new();
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        n.set_next(a, !b.lit());
        n.set_next(b, a.lit());
        n.add_target(a.lit(), "t");
        let col = Coloring {
            c: 2,
            colors: vec![0, 0],
        };
        assert!(matches!(
            fold(&n, &col, 0),
            Err(FoldError::InvalidColoring { .. })
        ));
    }

    #[test]
    fn mixed_parity_graph_cannot_fold() {
        // Paths of length 1 and 2 between the same registers: gcd = 1.
        let mut n = Netlist::new();
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        let c = n.reg("c", Init::Zero);
        let x = n.or(a.lit(), b.lit());
        n.set_next(b, a.lit());
        n.set_next(c, x);
        n.set_next(a, c.lit());
        n.add_target(c.lit(), "t");
        let col = detect(&n, 2);
        assert_eq!(col.c, 1);
    }

    #[test]
    fn phase_abstract_convenience() {
        // A 2-slowed toggle observed at its tail: the one-call wrapper
        // detects, picks the right color, and folds.
        let base = small_design(3);
        let slowed = c_slow(&base, 2);
        let folded = phase_abstract(&slowed).expect("two-phase");
        assert_eq!(folded.c, 2);
        assert_eq!(folded.netlist.num_regs(), base.num_regs());
        // Mixed-color observation refuses.
        let mut mixed = slowed.clone();
        let r0 = mixed.regs()[0].lit();
        let r1 = mixed.regs()[1].lit();
        let both = mixed.and(r0, r1);
        mixed.add_target(both, "mixed");
        assert!(phase_abstract(&mixed).is_none());
    }

    /// fold(c_slow(n)) is trace-equivalent to n: every folded step equals c
    /// original-design steps, with identical gate values on the sampled
    /// steps.
    #[test]
    fn folding_inverts_c_slowing() {
        for seed in 0..10u64 {
            for c in [2u32, 3] {
                let base = small_design(seed);
                let slowed = c_slow(&base, c);
                assert_eq!(slowed.num_regs(), base.num_regs() * c as usize);
                let col = detect(&slowed, c);
                assert_eq!(col.c % c, 0, "seed {seed}: detected factor {}", col.c);
                // Fold with the detected coloring, keeping the color of the
                // chain tails (the visible values).
                let tail_pos = slowed
                    .regs()
                    .iter()
                    .position(|&r| slowed.name(r).unwrap().ends_with(&format!("_p{}", c - 1)))
                    .unwrap();
                let keep = col.colors[tail_pos];
                let folded = fold(&slowed, &col, keep).unwrap();
                assert_eq!(folded.netlist.num_regs(), base.num_regs());
                folded.netlist.validate().unwrap();

                // Co-simulate: base and folded should agree given the same
                // input streams.
                let mut rng = SplitMix64::new(900 + seed);
                let steps = 12;
                let stim = Stimulus::random(&base, steps, &mut rng);
                let tb = simulate(&base, &stim);
                let stim_f = Stimulus {
                    inputs: stim.inputs.clone(),
                    nondet_init: vec![0; folded.netlist.num_regs()],
                };
                let tf = simulate(&folded.netlist, &stim_f);
                // Compare target values (mapped through c_slow then fold).
                let t_base = base.targets()[0].lit;
                let t_fold = folded.netlist.targets()[0].lit;
                for t in 0..steps {
                    assert_eq!(
                        tb.word(t_base, t),
                        tf.word(t_fold, t),
                        "seed {seed} c {c} t {t}"
                    );
                }
            }
        }
    }
}

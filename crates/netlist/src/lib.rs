//! # diam-netlist
//!
//! The netlist substrate of the `diam` project — a from-scratch Rust
//! reproduction of *Baumgartner & Kuehlmann, "Enhanced Diameter Bounding via
//! Structural Transformation", DATE 2004*.
//!
//! A [`Netlist`] (Definition 1 of the paper) is an and-inverter graph with
//! registers and safety *targets*; its semantics (Definition 2) are traces —
//! 0/1 valuations of every gate over time — realized executably by the
//! bit-parallel simulator in [`sim`].
//!
//! The crate also provides the structural analyses every downstream engine
//! shares ([`analysis`]: cone of influence, combinational supports, register
//! dependency graph and its SCC condensation), reconstruction under merge
//! maps ([`rebuild`]), AIGER 1.9 interchange ([`aiger`]), and DOT export
//! ([`dot`]).
//!
//! All of these run over one substrate: a compact CSR adjacency ([`csr`])
//! cached per netlist and a unified parallel visit engine ([`visit`]) whose
//! results are bit-identical across every parallelism setting — see those
//! modules for the layout, the cache invalidation contract, and the
//! determinism argument.
//!
//! ## Example
//!
//! ```
//! use diam_netlist::{analysis, sim, Init, Netlist};
//!
//! // A 2-stage pipeline feeding a comparison target.
//! let mut n = Netlist::new();
//! let i = n.input("data");
//! let s0 = n.reg("stage0", Init::Zero);
//! let s1 = n.reg("stage1", Init::Zero);
//! n.set_next(s0, i.lit());
//! n.set_next(s1, s0.lit());
//! let differ = n.xor(s0.lit(), s1.lit());
//! n.add_target(differ, "stages_differ");
//!
//! // The register dependency graph of a pipeline is an acyclic chain.
//! let coi = analysis::coi(&n, [differ]);
//! let graph = analysis::reg_graph(&n, &coi.regs);
//! let cond = analysis::condense(&graph);
//! assert!(cond.cyclic.iter().all(|&c| !c));
//!
//! // And the target is indeed reachable: drive 1 then watch the stages split.
//! let witness = sim::Witness {
//!     inputs: vec![vec![true], vec![false]],
//!     nondet_init: vec![false, false],
//! };
//! assert!(witness.replays_to(&n, differ));
//! ```

pub mod aiger;
pub mod analysis;
pub mod csr;
pub mod dot;
mod lit;
mod netlist;
pub mod rebuild;
pub mod sim;
pub mod stats;
pub mod visit;
pub mod word;

pub use csr::{Csr, Marks};
pub use lit::{Gate, Lit};
pub use netlist::{GateKind, Init, Netlist, Target, ValidateNetlistError};

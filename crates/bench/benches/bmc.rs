//! Benchmarks for the consumers of diameter bounds: BMC unrolling depth
//! scaling and the recurrence-diameter baseline (whose cost explosion is
//! part of the paper's motivation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diam_bmc::{check, BmcOptions, BmcOutcome};
use diam_core::recurrence::{recurrence_diameter, RecurrenceOptions};
use diam_gen::archetypes::{counter, pipeline, register_file};
use diam_netlist::{Lit, Netlist};

fn bench_bmc_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmc/counter_hit");
    group.sample_size(10);
    for bits in [4usize, 6, 8] {
        let mut n = Netlist::new();
        let cnt = counter(&mut n, "c", bits, Lit::TRUE);
        n.add_target(cnt.all_ones, "max");
        let depth = (1u64 << bits) - 1;
        group.bench_with_input(BenchmarkId::new("bits", bits), &n, |b, n| {
            b.iter(|| {
                let r = check(
                    n,
                    0,
                    &BmcOptions {
                        max_depth: depth,
                        ..BmcOptions::default()
                    },
                );
                assert!(matches!(r, BmcOutcome::Counterexample { .. }));
            })
        });
    }
    group.finish();
}

fn bench_recurrence(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmc/recurrence_diameter");
    group.sample_size(10);
    // Pipelines: the recurrence diameter is loose and costly; register
    // files: it explodes with width — the ablation motivating structural
    // bounding.
    for depth in [3usize, 4] {
        let mut n = Netlist::new();
        let p = pipeline(&mut n, "p", depth);
        n.add_target(p.tail, "t");
        group.bench_with_input(BenchmarkId::new("pipeline", depth), &n, |b, n| {
            b.iter(|| {
                recurrence_diameter(
                    n,
                    n.targets()[0].lit,
                    &RecurrenceOptions {
                        max_length: 20,
                        conflict_budget: Some(50_000),
                        ..Default::default()
                    },
                )
            })
        });
    }
    for rows in [2usize, 3] {
        let mut n = Netlist::new();
        let m = register_file(&mut n, "m", rows, 2);
        let cells: Vec<Lit> = m.all_cells().iter().map(|r| r.lit()).collect();
        let t = n.and_many(cells);
        n.add_target(t, "t");
        group.bench_with_input(BenchmarkId::new("register_file", rows), &n, |b, n| {
            b.iter(|| {
                recurrence_diameter(
                    n,
                    n.targets()[0].lit,
                    &RecurrenceOptions {
                        max_length: 20,
                        conflict_budget: Some(50_000),
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    use diam_core::symbolic::{reach, SymbolicLimits};
    let mut group = c.benchmark_group("bmc/symbolic_reachability");
    group.sample_size(10);
    for depth in [8usize, 16, 32] {
        let mut n = Netlist::new();
        let p = pipeline(&mut n, "p", depth);
        n.add_target(p.tail, "t");
        group.bench_with_input(BenchmarkId::new("pipeline", depth), &n, |b, n| {
            b.iter(|| reach(n, 0, &SymbolicLimits::default()).expect("fits"))
        });
    }
    for bits in [6usize, 8, 10] {
        let mut n = Netlist::new();
        let cnt = counter(&mut n, "c", bits, Lit::TRUE);
        n.add_target(cnt.all_ones, "max");
        group.bench_with_input(BenchmarkId::new("counter", bits), &n, |b, n| {
            b.iter(|| reach(n, 0, &SymbolicLimits::default()).expect("fits"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bmc_depth, bench_recurrence, bench_symbolic);
criterion_main!(benches);

//! Analytics over a parsed [`Trace`]: per-phase attribution rollups,
//! critical-path extraction, hotspot tables, and the per-depth SAT work
//! table — each rendered as text and as JSON.

use crate::model::{MemAttr, SatAttr, Span, Trace};
use diam_obs::json;
use diam_obs::{Metric, HIST_BUCKETS};
use std::collections::BTreeMap;

/// Aggregate statistics for one span *name* across the whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRollup {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed open→close duration.
    pub total_ns: u64,
    /// Summed self time (duration minus direct-child duration).
    pub self_ns: u64,
    /// Summed SAT attribution.
    pub sat: SatAttr,
    /// Summed allocator attribution (all-zero without `--mem on`).
    pub mem: MemAttr,
}

impl PhaseRollup {
    /// Share of the run's wall time taken by this phase's total time.
    pub fn share_of_wall(&self, wall_ns: u64) -> f64 {
        self.total_ns as f64 / wall_ns.max(1) as f64
    }
}

/// Per-phase attribution: one [`PhaseRollup`] per span name, sorted by
/// total time descending (name ascending as tie-break).
pub fn rollup(trace: &Trace) -> Vec<PhaseRollup> {
    let mut by_name: BTreeMap<&str, PhaseRollup> = BTreeMap::new();
    for sp in trace.spans.values() {
        let r = by_name
            .entry(sp.name.as_str())
            .or_insert_with(|| PhaseRollup {
                name: sp.name.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                sat: SatAttr::default(),
                mem: MemAttr::default(),
            });
        r.count += 1;
        r.total_ns = r.total_ns.saturating_add(sp.dur_ns);
        r.self_ns = r.self_ns.saturating_add(sp.self_ns(trace));
        r.sat.add(&sp.sat);
        r.mem.add(&sp.mem);
    }
    let mut rows: Vec<PhaseRollup> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

/// Top-`k` phases by **self** time (where the cycles actually burn).
pub fn hotspots(trace: &Trace, k: usize) -> Vec<PhaseRollup> {
    let mut rows = rollup(trace);
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    rows.truncate(k);
    rows
}

/// One step on a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Span id.
    pub span: u64,
    /// Span name.
    pub name: String,
    /// Short label from the open fields (target/design/engine/…).
    pub detail: String,
    /// Worker tag.
    pub worker: u64,
    /// Span duration.
    pub dur_ns: u64,
    /// Self time.
    pub self_ns: u64,
    /// This span's duration as a fraction of its parent step's duration
    /// (1.0 for the root step).
    pub share_of_parent: f64,
    /// SAT attribution of the span.
    pub sat: SatAttr,
}

/// The critical path from the heaviest root span: at every node, descend
/// into the child with the largest duration (ties: earliest open). Under a
/// `diam-par` fan-out the children of an orchestrating span overlap on
/// different workers; the heaviest child *is* the wall-clock-critical one,
/// which is exactly what this walk follows.
pub fn critical_path(trace: &Trace) -> Vec<PathStep> {
    let root = trace.roots().into_iter().max_by(|a, b| {
        trace.spans[a]
            .dur_ns
            .cmp(&trace.spans[b].dur_ns)
            .then(trace.spans[b].open_seq.cmp(&trace.spans[a].open_seq))
    });
    match root {
        Some(root) => critical_path_from(trace, root),
        None => Vec::new(),
    }
}

/// The critical path starting at span `root` (see [`critical_path`]).
pub fn critical_path_from(trace: &Trace, root: u64) -> Vec<PathStep> {
    let mut path = Vec::new();
    let mut at = root;
    let mut parent_dur: Option<u64> = None;
    while let Some(sp) = trace.spans.get(&at) {
        path.push(step_of(trace, sp, parent_dur));
        parent_dur = Some(sp.dur_ns);
        let heaviest = sp
            .children
            .iter()
            .filter_map(|c| trace.spans.get(c))
            .max_by(|a, b| a.dur_ns.cmp(&b.dur_ns).then(b.open_seq.cmp(&a.open_seq)));
        match heaviest {
            Some(child) => at = child.id,
            None => break,
        }
    }
    path
}

fn step_of(trace: &Trace, sp: &Span, parent_dur: Option<u64>) -> PathStep {
    PathStep {
        span: sp.id,
        name: sp.name.clone(),
        detail: sp.detail(),
        worker: sp.worker,
        dur_ns: sp.dur_ns,
        self_ns: sp.self_ns(trace),
        share_of_parent: match parent_dur {
            Some(p) => sp.dur_ns as f64 / p.max(1) as f64,
            None => 1.0,
        },
        sat: sp.sat,
    }
}

/// Per-depth SAT work, aggregated from `sat.solve` point events.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthRow {
    /// BMC depth.
    pub depth: u64,
    /// Number of solves at this depth.
    pub solves: u64,
    /// Total conflicts at this depth.
    pub conflicts: u64,
    /// Estimated conflict quantiles per solve (power-of-two-bucket upper
    /// bounds, the same estimator as `diam-obs` histograms).
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

/// Builds the per-depth SAT table from `sat.solve` point events, using the
/// `diam-obs` power-of-two histogram + quantile estimator per depth so the
/// numbers are directly comparable with the `sat.conflicts_per_solve`
/// metric on the trace's metrics line.
pub fn sat_depth_table(trace: &Trace) -> Vec<DepthRow> {
    let mut by_depth: BTreeMap<u64, Metric> = BTreeMap::new();
    for p in &trace.points {
        if p.name != "sat.solve" {
            continue;
        }
        let depth = p.fields.get("depth").and_then(|v| v.as_u64()).unwrap_or(0);
        let conflicts = p
            .fields
            .get("conflicts")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let m = by_depth.entry(depth).or_insert_with(|| Metric::Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; HIST_BUCKETS]),
        });
        if let Metric::Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        } = m
        {
            *count += 1;
            *sum = sum.saturating_add(conflicts);
            *min = (*min).min(conflicts);
            *max = (*max).max(conflicts);
            let b = (64 - conflicts.leading_zeros()) as usize;
            buckets[b] += 1;
        }
    }
    by_depth
        .into_iter()
        .map(|(depth, m)| {
            let (count, sum) = match &m {
                Metric::Histogram { count, sum, .. } => (*count, *sum),
                _ => (0, 0),
            };
            DepthRow {
                depth,
                solves: count,
                conflicts: sum,
                p50: m.quantile(0.50).unwrap_or(0),
                p90: m.quantile(0.90).unwrap_or(0),
                p99: m.quantile(0.99).unwrap_or(0),
            }
        })
        .collect()
}

fn fmt_s(ns: u64) -> String {
    format!("{:.3}s", ns as f64 / 1e9)
}

/// Renders the full text report: header, per-phase attribution, critical
/// path, hotspots, and (when `sat.solve` points exist) the per-depth table.
pub fn render_report(trace: &Trace, top_k: usize) -> String {
    let wall = trace.manifest.wall_ns;
    let mut out = String::new();
    out.push_str(&format!(
        "trace report — tool {} [{}], wall {}, {} spans / {} points\n",
        trace.manifest.tool,
        trace.manifest.build,
        fmt_s(wall),
        trace.span_count(),
        trace.points.len()
    ));
    if let Some(kb) = trace.manifest.peak_rss_kb {
        out.push_str(&format!("peak rss {:.1} MiB\n", kb as f64 / 1024.0));
    }

    out.push_str("\nper-phase attribution (by span name):\n");
    out.push_str(&format!(
        "  {:<22} {:>6} {:>12} {:>12} {:>7} {:>10} {:>12}\n",
        "phase", "count", "total", "self", "%wall", "sat.solves", "sat.conflicts"
    ));
    for r in rollup(trace) {
        out.push_str(&format!(
            "  {:<22} {:>6} {:>12} {:>12} {:>6.1}% {:>10} {:>12}\n",
            r.name,
            r.count,
            fmt_s(r.total_ns),
            fmt_s(r.self_ns),
            100.0 * r.share_of_wall(wall),
            r.sat.solves,
            r.sat.conflicts,
        ));
    }
    // Whole-run arena-GC totals (root spans carry all nested attribution).
    // Absent in pre-PR5 traces, so old reports render unchanged.
    let mut gc = crate::model::SatAttr::default();
    for id in trace.roots() {
        gc.add(&trace.spans[&id].sat);
    }
    if gc.gc_runs > 0 {
        out.push_str(&format!(
            "  arena gc: {} runs, {:.1} KiB reclaimed\n",
            gc.gc_runs,
            gc.gc_freed_bytes as f64 / 1024.0
        ));
    }
    // Whole-run cube clause-exchange totals (absent before the cube layer).
    if gc.shared_in > 0 || gc.shared_out > 0 {
        out.push_str(&format!(
            "  clause exchange: {} exported, {} imported\n",
            gc.shared_out, gc.shared_in
        ));
    }
    // Whole-run allocator totals (root spans carry all nested attribution).
    // All-zero — and absent — unless the trace was recorded with `--mem on`.
    let mut mem = MemAttr::default();
    for id in trace.roots() {
        mem.add(&trace.spans[&id].mem);
    }
    if !mem.is_zero() {
        out.push_str(&format!(
            "  allocator: {} allocs / {} frees, {:.1} MiB allocated, {:.1} MiB freed\n",
            mem.allocs,
            mem.frees,
            mem.alloc_bytes as f64 / (1024.0 * 1024.0),
            mem.freed_bytes as f64 / (1024.0 * 1024.0)
        ));
    }

    out.push_str("\ncritical path (heaviest-child chain):\n");
    for (i, step) in critical_path(trace).iter().enumerate() {
        let label = if step.detail.is_empty() {
            step.name.clone()
        } else {
            format!("{}({})", step.name, step.detail)
        };
        out.push_str(&format!(
            "  {}{:<width$} {:>12}  self {:>12}  {:>5.1}% of parent  w{}{}\n",
            "  ".repeat(i),
            label,
            fmt_s(step.dur_ns),
            fmt_s(step.self_ns),
            100.0 * step.share_of_parent,
            step.worker,
            match (step.sat.conflicts, step.sat.shared_in + step.sat.shared_out) {
                (0, 0) => String::new(),
                (c, 0) => format!("  sat.conflicts {c}"),
                (c, _) => format!(
                    "  sat.conflicts {c}  shared in/out {}/{}",
                    step.sat.shared_in, step.sat.shared_out
                ),
            },
            width = 34usize.saturating_sub(2 * i),
        ));
    }

    out.push_str(&format!("\nhotspots (top {top_k} by self time):\n"));
    for r in hotspots(trace, top_k) {
        out.push_str(&format!(
            "  {:<22} {:>12}  ({:.1}% of wall)\n",
            r.name,
            fmt_s(r.self_ns),
            100.0 * r.self_ns as f64 / wall.max(1) as f64
        ));
    }

    let depths = sat_depth_table(trace);
    if !depths.is_empty() {
        out.push_str("\nper-depth SAT work (conflicts per solve, p≤ bucket bounds):\n");
        out.push_str(&format!(
            "  {:>6} {:>8} {:>12} {:>8} {:>8} {:>8}\n",
            "depth", "solves", "conflicts", "p50", "p90", "p99"
        ));
        for d in depths {
            out.push_str(&format!(
                "  {:>6} {:>8} {:>12} {:>8} {:>8} {:>8}\n",
                d.depth, d.solves, d.conflicts, d.p50, d.p90, d.p99
            ));
        }
    }
    out
}

/// Renders the report as a single JSON object (`phases`, `critical_path`,
/// `hotspots`, `sat_depths`).
pub fn report_to_json(trace: &Trace, top_k: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"tool\":");
    json::write_escaped(&mut out, &trace.manifest.tool);
    out.push_str(&format!(",\"wall_ns\":{}", trace.manifest.wall_ns));
    out.push_str(",\"phases\":[");
    for (i, r) in rollup(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        phase_json(&mut out, r);
    }
    out.push_str("],\"critical_path\":[");
    for (i, s) in critical_path(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_escaped(&mut out, &s.name);
        out.push_str(",\"detail\":");
        json::write_escaped(&mut out, &s.detail);
        out.push_str(&format!(
            ",\"span\":{},\"worker\":{},\"dur_ns\":{},\"self_ns\":{},\"share_of_parent\":{:.4},\"sat_conflicts\":{}}}",
            s.span, s.worker, s.dur_ns, s.self_ns, s.share_of_parent, s.sat.conflicts
        ));
    }
    out.push_str("],\"hotspots\":[");
    for (i, r) in hotspots(trace, top_k).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        phase_json(&mut out, r);
    }
    out.push_str("],\"sat_depths\":[");
    for (i, d) in sat_depth_table(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"depth\":{},\"solves\":{},\"conflicts\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            d.depth, d.solves, d.conflicts, d.p50, d.p90, d.p99
        ));
    }
    out.push_str("]}");
    out
}

fn phase_json(out: &mut String, r: &PhaseRollup) {
    out.push_str("{\"name\":");
    json::write_escaped(out, &r.name);
    out.push_str(&format!(
        ",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"sat_solves\":{},\"sat_conflicts\":{},\"sat_propagations\":{}}}",
        r.count, r.total_ns, r.self_ns, r.sat.solves, r.sat.conflicts, r.sat.propagations
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> Trace {
        // root(100) -> { fast(10), slow(60) -> inner(40) }, all worker 0.
        let text = concat!(
            "{\"ts\":0,\"span\":0,\"ev\":\"manifest\",\"fields\":{\"tool\":\"demo\",\"args\":[],\"input\":null,\"options\":{},\"build\":\"b\",\"started_unix_ms\":0,\"wall_ns\":100}}\n",
            "{\"ts\":0,\"seq\":0,\"worker\":0,\"ev\":\"open\",\"span\":1,\"parent\":0,\"name\":\"root\",\"fields\":{}}\n",
            "{\"ts\":1,\"seq\":1,\"worker\":0,\"ev\":\"open\",\"span\":2,\"parent\":1,\"name\":\"fast\",\"fields\":{}}\n",
            "{\"ts\":11,\"seq\":2,\"worker\":0,\"ev\":\"close\",\"span\":2,\"dur_ns\":10,\"name\":\"fast\",\"fields\":{}}\n",
            "{\"ts\":12,\"seq\":3,\"worker\":0,\"ev\":\"open\",\"span\":3,\"parent\":1,\"name\":\"slow\",\"fields\":{\"target\":\"t9\"}}\n",
            "{\"ts\":13,\"seq\":4,\"worker\":0,\"ev\":\"open\",\"span\":4,\"parent\":3,\"name\":\"inner\",\"fields\":{}}\n",
            "{\"ts\":20,\"seq\":5,\"worker\":0,\"ev\":\"point\",\"span\":4,\"name\":\"sat.solve\",\"fields\":{\"depth\":2,\"conflicts\":5}}\n",
            "{\"ts\":25,\"seq\":6,\"worker\":0,\"ev\":\"point\",\"span\":4,\"name\":\"sat.solve\",\"fields\":{\"depth\":3,\"conflicts\":100}}\n",
            "{\"ts\":53,\"seq\":7,\"worker\":0,\"ev\":\"close\",\"span\":4,\"dur_ns\":40,\"name\":\"inner\",\"fields\":{\"sat_solves\":2,\"sat_conflicts\":105,\"sat_decisions\":0,\"sat_propagations\":0}}\n",
            "{\"ts\":72,\"seq\":8,\"worker\":0,\"ev\":\"close\",\"span\":3,\"dur_ns\":60,\"name\":\"slow\",\"fields\":{\"sat_solves\":2,\"sat_conflicts\":105,\"sat_decisions\":0,\"sat_propagations\":0}}\n",
            "{\"ts\":100,\"seq\":9,\"worker\":0,\"ev\":\"close\",\"span\":1,\"dur_ns\":100,\"name\":\"root\",\"fields\":{\"sat_solves\":2,\"sat_conflicts\":105,\"sat_decisions\":0,\"sat_propagations\":0}}\n",
            "{\"ts\":100,\"span\":0,\"ev\":\"metrics\",\"fields\":{\"sat.solves\":2}}\n",
        );
        Trace::parse(text).expect("valid demo trace")
    }

    #[test]
    fn rollup_totals_and_self_times() {
        let t = demo_trace();
        let rows = rollup(&t);
        assert_eq!(rows[0].name, "root");
        assert_eq!(rows[0].total_ns, 100);
        assert_eq!(rows[0].self_ns, 30); // 100 - (10 + 60)
        let slow = rows.iter().find(|r| r.name == "slow").unwrap();
        assert_eq!(slow.self_ns, 20); // 60 - 40
        assert_eq!(slow.sat.conflicts, 105);
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let t = demo_trace();
        let path = critical_path(&t);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["root", "slow", "inner"]);
        assert!((path[1].share_of_parent - 0.6).abs() < 1e-9);
        assert_eq!(path[1].detail, "t9");
    }

    #[test]
    fn hotspots_rank_by_self_time() {
        let t = demo_trace();
        let hot = hotspots(&t, 2);
        assert_eq!(hot[0].name, "inner"); // self 40
        assert_eq!(hot[1].name, "root"); // self 30
    }

    #[test]
    fn depth_table_quantiles() {
        let t = demo_trace();
        let rows = sat_depth_table(&t);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].depth, 2);
        assert_eq!(rows[0].solves, 1);
        assert_eq!(rows[0].p50, 7); // 5 → 3-bit bucket, upper bound 7
        assert_eq!(rows[1].conflicts, 100);
        assert_eq!(rows[1].p99, 127); // 100 → 7-bit bucket
    }

    #[test]
    fn allocator_rollup_renders_only_with_mem_fields() {
        // Without alloc_* close fields (mem off) the report has no
        // allocator line — old traces render unchanged.
        let plain = demo_trace();
        assert!(!render_report(&plain, 3).contains("allocator:"));
        // With them, the root-sum rollup line appears and MemAttr parses.
        let text = concat!(
            "{\"ts\":0,\"span\":0,\"ev\":\"manifest\",\"fields\":{\"tool\":\"demo\",\"args\":[],\"input\":null,\"options\":{},\"build\":\"b\",\"started_unix_ms\":0,\"wall_ns\":100}}\n",
            "{\"ts\":0,\"seq\":0,\"worker\":0,\"ev\":\"open\",\"span\":1,\"parent\":0,\"name\":\"root\",\"fields\":{}}\n",
            "{\"ts\":100,\"seq\":1,\"worker\":0,\"ev\":\"close\",\"span\":1,\"dur_ns\":100,\"name\":\"root\",\"fields\":{\"alloc_allocs\":10,\"alloc_frees\":8,\"alloc_bytes\":2097152,\"alloc_freed_bytes\":1048576}}\n",
            "{\"ts\":100,\"span\":0,\"ev\":\"metrics\",\"fields\":{}}\n",
        );
        let t = Trace::parse(text).expect("valid trace");
        assert_eq!(t.spans[&1].mem.allocs, 10);
        assert_eq!(t.spans[&1].mem.alloc_bytes, 2_097_152);
        let rows = rollup(&t);
        assert_eq!(rows[0].mem.frees, 8);
        let rendered = render_report(&t, 3);
        assert!(
            rendered.contains("allocator: 10 allocs / 8 frees, 2.0 MiB allocated, 1.0 MiB freed"),
            "{rendered}"
        );
    }

    #[test]
    fn renderers_contain_key_lines() {
        let t = demo_trace();
        let text = render_report(&t, 3);
        assert!(text.contains("per-phase attribution"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("slow(t9)"), "{text}");
        assert!(text.contains("per-depth SAT work"), "{text}");
        let j = report_to_json(&t, 3);
        let v = json::parse(&j).expect("valid json");
        assert!(v.get("phases").is_some());
        assert!(v.get("critical_path").is_some());
    }
}

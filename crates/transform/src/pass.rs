//! Certificate-carrying transformation passes.
//!
//! Every engine of the paper is wrapped as a [`Pass`]: a transformation
//! that, when applicable, produces a new netlist **plus a [`Certificate`]**
//! carrying *both* directions of the per-theorem correspondence:
//!
//! * the constant-time **bound back-translation** of Theorems 1–4
//!   ([`BoundStep`]s per target: `+skew` for RET, `×c` for FOLD, `+k` for
//!   ENL, identity for COI/COM/PARAM), and
//! * a **witness lifter** ([`Certificate::lift`]) mapping a counterexample
//!   trace found on the transformed netlist back to a replay-valid trace of
//!   the input netlist — the constructive content of the theorems' trace
//!   correspondences.
//!
//! Per-pass lifting strategies:
//!
//! | Pass | Bound map | Trace map |
//! |---|---|---|
//! | COI / COM | identity (Thm 1) | gate-map read-back: simulate the transformed witness, read each original input / nondet init through its surviving literal |
//! | PARAM | identity (Thm 1) | per-frame SAT inversion of the re-encoded cut (the cut ranges are equal, so every frame is invertible) |
//! | RET | `d̂ + skew(t)` (Thm 2) | lag-shifted prefix re-construction: input `u` at original time `τ` is the retimed input at `τ − skew(u)`, prefix times come from the retiming stump |
//! | FOLD | `c · d̂` (Thm 3) | c-slow frame expansion: hold each folded input frame for `c` original steps; kept registers copy their nondet choices |
//! | ENL | `d̂ + k` (Thm 4) | k-suffix extension: pin the witness prefix in a BMC query on the pre-enlargement netlist and extend to the original target |
//!
//! Certificates compose: a [`CertificateChain`] lifts through the passes in
//! reverse application order and concatenates bound steps in application
//! order, replacing ad-hoc per-engine bookkeeping in the pipeline driver.
//!
//! Lifting is total for COI/COM/PARAM/RET/FOLD. ENL lifting can fail
//! (returning `None`) in one corner: a depth-0 witness on an enlarged
//! target whose pre-netlist has `Init::Fn` registers may be *spurious* —
//! the enlarged state is realizable at time 0, but the input values that
//! realize it conflict with the inputs the k-step suffix needs. Callers
//! fall back to BMC on the original netlist in that case (the `d̂ + k`
//! *bound* of Theorem 4 is unaffected).

use crate::com::{sweep, SweepOptions};
use crate::enlarge::{enlarge, EnlargeOptions};
use crate::fold::{detect, fold};
use crate::parametric::reencode_auto;
use crate::retime::retime;
use crate::unroll::{FrameZero, Unroller};
use diam_netlist::rebuild::{explicit_nondet_init, reduce_coi};
use diam_netlist::sim::{simulate, Witness};
use diam_netlist::stats::{stats, NetlistStats};
use diam_netlist::{Init, Lit, Netlist};
use diam_sat::{SolveResult, Solver};
use std::collections::HashMap;

/// A recorded bound back-translation step for one target, in application
/// order (replayed in reverse by the pipeline's back-translation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundStep {
    /// Theorem 2 / Theorem 4: add a constant.
    Add(u64),
    /// Theorem 3: multiply by the folding factor.
    Mul(u64),
}

/// The two-directional evidence a pass emits for each target: bound steps
/// (transformed bound → original bound) and a witness lifter (transformed
/// counterexample → original counterexample).
#[derive(Debug, Clone)]
pub struct Certificate {
    pass: &'static str,
    bounds: Vec<Vec<BoundStep>>,
    lifter: Lifter,
}

impl Certificate {
    /// A certificate with identity bound maps and an identity trace map
    /// (used by passes that change nothing a witness can observe).
    pub fn identity(pass: &'static str, num_targets: usize) -> Certificate {
        Certificate {
            pass,
            bounds: vec![Vec::new(); num_targets],
            lifter: Lifter::Identity,
        }
    }

    /// The name of the pass that emitted this certificate.
    pub fn pass(&self) -> &'static str {
        self.pass
    }

    /// The bound back-translation steps for target `index`, in application
    /// order.
    pub fn bound_steps(&self, index: usize) -> &[BoundStep] {
        &self.bounds[index]
    }

    /// Number of targets this certificate covers.
    pub fn num_targets(&self) -> usize {
        self.bounds.len()
    }

    /// Lifts a witness for target `index` of this pass's *output* netlist
    /// into a witness for the same target of the *input* netlist.
    ///
    /// Returns `None` when the witness is empty or (ENL only, see module
    /// docs) when the enlarged witness is spurious.
    pub fn lift(&self, index: usize, w: &Witness) -> Option<Witness> {
        self.lifter.lift(index, w)
    }
}

/// The trace-map side of a certificate.
///
/// The variants differ widely in size (Retime carries the stump table,
/// Identity is empty), but there is at most one `Lifter` per applied pass
/// per pipeline run — boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Lifter {
    /// The pass preserves inputs and nondet registers verbatim.
    Identity,
    /// Theorem 1 (COI / COM): every original input and nondet register
    /// survives as a literal of the transformed netlist; simulate the
    /// transformed witness and read the values back.
    GateMap {
        transformed: Netlist,
        /// Per original-input position: its literal in the transformed
        /// netlist (`None` = dropped; its value is unobservable).
        input_lits: Vec<Option<Lit>>,
        /// Per original-register position: its literal in the transformed
        /// netlist (only consulted for `Init::Nondet` registers).
        nondet_lits: Vec<Option<Lit>>,
    },
    /// Theorem 2 (RET, fused with `explicit_nondet_init`).
    Retime {
        /// Inputs of the *original* netlist (the pre-netlist appends the
        /// `_init` inputs after these).
        orig_inputs: usize,
        /// Registers of the original netlist.
        orig_regs: usize,
        /// Temporal skew `j_p = −lag` per pre-netlist input position.
        input_skews: Vec<u64>,
        /// Temporal skew `j_t` per target.
        target_skews: Vec<u64>,
        /// `(pre input position, original time) → retimed input position`
        /// for the stump inputs covering the discarded prefix.
        stump: HashMap<(usize, u64), usize>,
        /// `(original register position, pre input position)` for the
        /// `_init` inputs that made nondet initial values explicit.
        init_inputs: Vec<(usize, usize)>,
    },
    /// Theorem 3 (FOLD): block-hold expansion by the folding factor.
    Fold {
        c: u64,
        /// Positions (in original register order) of the kept color class —
        /// the folded netlist's registers, in order.
        kept: Vec<usize>,
        orig_regs: usize,
    },
    /// Theorem 4 (ENL): k-suffix extension via BMC on the pre-enlargement
    /// netlist.
    Enlarge {
        /// The netlist *before* enlargement (same inputs and registers as
        /// the enlarged one; only targets differ).
        pre: Netlist,
        /// Enlargement depth per target (`None` = target untouched).
        ks: Vec<Option<u32>>,
    },
    /// Theorem 1 (PARAM): per-frame SAT inversion of the re-encoded cut.
    Parametric {
        pre: Netlist,
        transformed: Netlist,
        /// The re-encoded cut literals, in the pre netlist.
        cut: Vec<Lit>,
        /// Where each cut value lives in the transformed netlist (`None` =
        /// merged away / unobservable — safe to leave unconstrained, since
        /// the cut ranges are equal and partial constraints of a satisfiable
        /// full vector stay satisfiable).
        cut_new: Vec<Option<Lit>>,
        /// Per pre-input position: surviving literal in the transformed
        /// netlist (`None` for cone inputs, recovered from the SAT model).
        input_lits: Vec<Option<Lit>>,
        /// Per pre-register position: surviving literal (for nondet reads).
        nondet_lits: Vec<Option<Lit>>,
    },
}

impl Lifter {
    fn lift(&self, index: usize, w: &Witness) -> Option<Witness> {
        if w.inputs.is_empty() {
            return None;
        }
        match self {
            Lifter::Identity => Some(w.clone()),
            Lifter::GateMap {
                transformed,
                input_lits,
                nondet_lits,
            } => {
                let trace = simulate(transformed, &w.to_stimulus());
                let inputs = (0..trace.len())
                    .map(|t| {
                        input_lits
                            .iter()
                            .map(|ol| ol.map(|l| trace.value(l, t, 0)).unwrap_or(false))
                            .collect()
                    })
                    .collect();
                let nondet_init = nondet_lits
                    .iter()
                    .map(|ol| ol.map(|l| trace.value(l, 0, 0)).unwrap_or(false))
                    .collect();
                Some(Witness {
                    inputs,
                    nondet_init,
                })
            }
            Lifter::Retime {
                orig_inputs,
                orig_regs,
                input_skews,
                target_skews,
                stump,
                init_inputs,
            } => {
                let d = w.inputs.len() - 1;
                let jt = usize::try_from(target_skews[index]).ok()?;
                // Reconstruct the pre-netlist stimulus over times 0..=d+jt:
                // input `p` with skew `j_p` at original time τ is the
                // retimed input at τ − j_p when that lands inside the
                // retimed trace, a stump input when τ is in the discarded
                // prefix, and unconstrained (false) otherwise.
                let pre_rows: Vec<Vec<bool>> = (0..=d + jt)
                    .map(|tau| {
                        input_skews
                            .iter()
                            .enumerate()
                            .map(|(p, &jp)| {
                                let jp = jp as usize;
                                if tau >= jp {
                                    let src = tau - jp;
                                    if src <= d {
                                        w.inputs[src][p]
                                    } else {
                                        false
                                    }
                                } else {
                                    stump
                                        .get(&(p, tau as u64))
                                        .map(|&q| w.inputs[0][q])
                                        .unwrap_or(false)
                                }
                            })
                            .collect()
                    })
                    .collect();
                // Strip the `_init` input columns back into nondet choices.
                let mut nondet_init = vec![false; *orig_regs];
                for &(reg_pos, input_pos) in init_inputs {
                    nondet_init[reg_pos] = pre_rows[0][input_pos];
                }
                let inputs = pre_rows
                    .into_iter()
                    .map(|row| row[..*orig_inputs].to_vec())
                    .collect();
                Some(Witness {
                    inputs,
                    nondet_init,
                })
            }
            Lifter::Fold { c, kept, orig_regs } => {
                let d = w.inputs.len() - 1;
                let c = *c as usize;
                // Hold every folded input frame for c original steps: all
                // reads inside original block [c·t, c·t+c) see folded frame
                // t, which is exactly the c-step expansion the folded
                // next-state functions compute.
                let inputs = (0..=c * d).map(|tau| w.inputs[tau / c].clone()).collect();
                let mut nondet_init = vec![false; *orig_regs];
                for (j, &pos) in kept.iter().enumerate() {
                    nondet_init[pos] = w.nondet_init[j];
                }
                Some(Witness {
                    inputs,
                    nondet_init,
                })
            }
            Lifter::Enlarge { pre, ks } => {
                let Some(k) = ks[index] else {
                    return Some(w.clone());
                };
                let k = k as usize;
                let d = w.inputs.len() - 1;
                // Pin the witness prefix (nondet choices + input frames
                // 0..d; frame d of the enlarged witness only fed the
                // enlarged target, which reads registers exclusively) and
                // ask BMC on the pre netlist for the earliest original-
                // target hit in d..=d+k. For d ≥ 1 the state at time d is
                // fully pinned and the enlarged target guarantees a hit at
                // exactly d+k; for d = 0 the query may be unsatisfiable
                // (spurious witness, see module docs).
                let mut solver = Solver::new();
                let mut unroller = Unroller::new(pre, FrameZero::Init);
                let mut assumptions = Vec::new();
                for (j, &r) in pre.regs().iter().enumerate() {
                    if pre.reg_init(r) == Init::Nondet {
                        let l = unroller.lit_at(&mut solver, r.lit(), 0);
                        assumptions.push(if w.nondet_init[j] { l } else { !l });
                    }
                }
                for (tau, row) in w.inputs.iter().enumerate().take(d) {
                    for (p, &i) in pre.inputs().iter().enumerate() {
                        let l = unroller.lit_at(&mut solver, i.lit(), tau);
                        assumptions.push(if row[p] { l } else { !l });
                    }
                }
                let target = pre.targets()[index].lit;
                for t in d..=d + k {
                    let tl = unroller.lit_at(&mut solver, target, t);
                    let mut a = assumptions.clone();
                    a.push(tl);
                    if solver.solve_with(&a) == SolveResult::Sat {
                        let inputs = (0..=t)
                            .map(|tau| {
                                pre.inputs()
                                    .iter()
                                    .map(|&i| {
                                        unroller
                                            .try_lit_at(i.lit(), tau)
                                            .and_then(|l| solver.value(l))
                                            .unwrap_or(false)
                                    })
                                    .collect()
                            })
                            .collect();
                        return Some(Witness {
                            inputs,
                            nondet_init: w.nondet_init.clone(),
                        });
                    }
                }
                None
            }
            Lifter::Parametric {
                pre,
                transformed,
                cut,
                cut_new,
                input_lits,
                nondet_lits,
            } => {
                let trace = simulate(transformed, &w.to_stimulus());
                // One frame-0 unroll of the pre netlist serves every time
                // step: the cut cones are combinational over inputs only.
                let mut solver = Solver::new();
                let mut unroller = Unroller::new(pre, FrameZero::Free);
                let sat_cut: Vec<_> = cut
                    .iter()
                    .map(|&l| unroller.lit_at(&mut solver, l, 0))
                    .collect();
                let mut inputs = Vec::with_capacity(trace.len());
                for tau in 0..trace.len() {
                    let assumptions: Vec<_> = cut_new
                        .iter()
                        .enumerate()
                        .filter_map(|(i, cn)| {
                            cn.map(|l| {
                                if trace.value(l, tau, 0) {
                                    sat_cut[i]
                                } else {
                                    !sat_cut[i]
                                }
                            })
                        })
                        .collect();
                    // The re-encoded range equals the original range, so
                    // every (partial) observed cut valuation is producible.
                    if solver.solve_with(&assumptions) != SolveResult::Sat {
                        debug_assert!(false, "parametric cut inversion must be satisfiable");
                        return None;
                    }
                    let row = pre
                        .inputs()
                        .iter()
                        .enumerate()
                        .map(|(p, &i)| {
                            if let Some(sl) = unroller.try_lit_at(i.lit(), 0) {
                                // Cone input: take the model's preimage.
                                solver.value(sl).unwrap_or(false)
                            } else if let Some(ml) = input_lits[p] {
                                // Surviving input: copy through the map.
                                trace.value(ml, tau, 0)
                            } else {
                                false
                            }
                        })
                        .collect();
                    inputs.push(row);
                }
                let nondet_init = nondet_lits
                    .iter()
                    .map(|ol| ol.map(|l| trace.value(l, 0, 0)).unwrap_or(false))
                    .collect();
                Some(Witness {
                    inputs,
                    nondet_init,
                })
            }
        }
    }
}

/// A composition of certificates, in application order.
#[derive(Debug, Clone, Default)]
pub struct CertificateChain {
    certs: Vec<Certificate>,
}

impl CertificateChain {
    /// An empty chain (identity in both directions).
    pub fn new() -> CertificateChain {
        CertificateChain::default()
    }

    /// Appends a certificate (the pass ran *after* all previous ones).
    pub fn push(&mut self, cert: Certificate) {
        self.certs.push(cert);
    }

    /// The certificates, in application order.
    pub fn certs(&self) -> &[Certificate] {
        &self.certs
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// Number of certificates in the chain.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// All bound steps for target `index`, concatenated in application
    /// order (back-translation replays them in reverse).
    pub fn bound_steps(&self, index: usize) -> Vec<BoundStep> {
        self.certs
            .iter()
            .flat_map(|c| c.bound_steps(index).iter().copied())
            .collect()
    }

    /// Lifts a witness for target `index` of the *final* netlist through
    /// every certificate in reverse, yielding a witness for the *original*
    /// netlist. `None` propagates from any individual lift failure.
    pub fn lift(&self, index: usize, w: &Witness) -> Option<Witness> {
        let mut w = w.clone();
        for cert in self.certs.iter().rev() {
            w = cert.lift(index, &w)?;
        }
        Some(w)
    }

    /// The *proof-prefix obligation* for target `index`: when every bound
    /// step is an `Add`, the chain's bound map is `d̂ ↦ d̂ + p` with
    /// `p = Σ adds`, and "transformed netlist clean up to depth D" plus
    /// "original netlist clean up to depth p − 1" proves the original clean
    /// up to `D + p`. Returns `None` when a `Mul` step (FOLD) is present —
    /// multiplicative maps do not transfer emptiness, so callers must fall
    /// back to BMC on the original netlist.
    pub fn prefix_obligation(&self, index: usize) -> Option<u64> {
        let mut p = 0u64;
        for cert in &self.certs {
            for step in cert.bound_steps(index) {
                match *step {
                    BoundStep::Add(k) => p += k,
                    BoundStep::Mul(_) => return None,
                }
            }
        }
        Some(p)
    }
}

/// The outcome of a successfully applied pass.
#[derive(Debug, Clone)]
pub struct PassOutcome {
    /// The transformed netlist.
    pub netlist: Netlist,
    /// The pass's certificate (bound maps + witness lifter).
    pub cert: Certificate,
    /// Structural statistics before the pass.
    pub stats_before: NetlistStats,
    /// Structural statistics after the pass.
    pub stats_after: NetlistStats,
    /// Pass-specific close-field details (merges, refinements, …), recorded
    /// on the `pass.apply` span by [`apply_traced`].
    pub details: Vec<(&'static str, u64)>,
}

impl PassOutcome {
    fn new(before: &Netlist, netlist: Netlist, cert: Certificate) -> PassOutcome {
        PassOutcome {
            stats_before: stats(before),
            stats_after: stats(&netlist),
            netlist,
            cert,
            details: Vec::new(),
        }
    }

    fn with_details(mut self, details: Vec<(&'static str, u64)>) -> PassOutcome {
        self.details = details;
        self
    }
}

/// A certificate-carrying transformation pass.
pub trait Pass {
    /// Stable lowercase pass name (also the `pass` field of the
    /// `pass.apply` observability span).
    fn name(&self) -> &'static str;

    /// Applies the pass. `None` means the pass did not apply (unsupported
    /// structure, no usable cut, no folding factor, …) — the pipeline skips
    /// it and bounds/witnesses transfer unchanged.
    fn apply(&self, n: &Netlist) -> Option<PassOutcome>;
}

/// Runs `pass` under the unified `pass.apply` observability span: one span
/// schema for every engine, carrying the pass name, before/after structural
/// statistics, pass-specific details, and (via the ambient SAT attribution)
/// the solver work the engine performed.
pub fn apply_traced(pass: &dyn Pass, n: &Netlist) -> Option<PassOutcome> {
    let mut sp = diam_obs::span!("pass.apply", pass = pass.name());
    let out = pass.apply(n);
    match &out {
        Some(o) => {
            sp.record("ok", true);
            if diam_obs::enabled() {
                record_stats(&mut sp, &o.stats_before, &o.stats_after);
                for &(k, v) in &o.details {
                    sp.record(k, v);
                }
            }
        }
        None => sp.record("ok", false),
    }
    out
}

/// Records a before/after [`NetlistStats`] pair on a span — the single
/// shared stats path used by both the `pass.apply` schema and the pipeline's
/// step log.
fn record_stats(sp: &mut diam_obs::SpanGuard, before: &NetlistStats, after: &NetlistStats) {
    sp.record("ands_before", before.ands);
    sp.record("regs_before", before.regs);
    sp.record("inputs_before", before.inputs);
    sp.record("level_before", before.max_level);
    sp.record("ands_after", after.ands);
    sp.record("regs_after", after.regs);
    sp.record("inputs_after", after.inputs);
    sp.record("level_after", after.max_level);
}

fn gate_map_certificate(
    pass: &'static str,
    n: &Netlist,
    map: &[Option<Lit>],
    out: &Netlist,
) -> Certificate {
    Certificate {
        pass,
        bounds: vec![Vec::new(); n.targets().len()],
        lifter: Lifter::GateMap {
            transformed: out.clone(),
            input_lits: n.inputs().iter().map(|&i| map[i.index()]).collect(),
            nondet_lits: n.regs().iter().map(|&r| map[r.index()]).collect(),
        },
    }
}

/// Cone-of-influence reduction (Theorem 1).
#[derive(Debug, Clone, Default)]
pub struct CoiPass;

impl Pass for CoiPass {
    fn name(&self) -> &'static str {
        "coi"
    }

    fn apply(&self, n: &Netlist) -> Option<PassOutcome> {
        let r = reduce_coi(n);
        let cert = gate_map_certificate("coi", n, &r.map, &r.netlist);
        Some(PassOutcome::new(n, r.netlist, cert))
    }
}

/// Redundancy removal — SAT sweeping with induction (Theorem 1).
#[derive(Debug, Clone, Default)]
pub struct ComPass(pub SweepOptions);

impl Pass for ComPass {
    fn name(&self) -> &'static str {
        "com"
    }

    fn apply(&self, n: &Netlist) -> Option<PassOutcome> {
        let r = sweep(n, &self.0);
        let cert = gate_map_certificate("com", n, &r.map, &r.netlist);
        Some(PassOutcome::new(n, r.netlist, cert).with_details(vec![
            ("merges", r.merges as u64),
            ("refinements", r.refinements as u64),
        ]))
    }
}

/// Normalized min-register retiming, fused with the nondet-init
/// normalization it requires (Theorem 2).
#[derive(Debug, Clone, Default)]
pub struct RetimePass;

impl Pass for RetimePass {
    fn name(&self) -> &'static str {
        "ret"
    }

    fn apply(&self, n: &Netlist) -> Option<PassOutcome> {
        // Retiming requires literal initial values; make nondeterministic
        // inits explicit first (semantics-preserving `_init` inputs).
        let mut pre = n.clone();
        let created = explicit_nondet_init(&mut pre);
        let ret = retime(&pre).ok()?;

        let mut bounds = Vec::with_capacity(pre.targets().len());
        let mut target_skews = Vec::with_capacity(pre.targets().len());
        for t in pre.targets() {
            let skew = ret.skew(t.lit.gate());
            bounds.push(if skew > 0 {
                vec![BoundStep::Add(skew)]
            } else {
                Vec::new()
            });
            target_skews.push(skew);
        }

        let input_skews = pre.inputs().iter().map(|&i| ret.skew(i)).collect();
        let mut pre_input_pos = vec![usize::MAX; pre.num_gates()];
        for (p, &i) in pre.inputs().iter().enumerate() {
            pre_input_pos[i.index()] = p;
        }
        let mut ret_input_pos = vec![usize::MAX; ret.netlist.num_gates()];
        for (q, &i) in ret.netlist.inputs().iter().enumerate() {
            ret_input_pos[i.index()] = q;
        }
        let stump = ret
            .stump_inputs
            .iter()
            .map(|&(g, t, ni)| ((pre_input_pos[g.index()], t), ret_input_pos[ni.index()]))
            .collect();
        let mut reg_pos = vec![usize::MAX; n.num_gates()];
        for (j, &r) in n.regs().iter().enumerate() {
            reg_pos[r.index()] = j;
        }
        let init_inputs = created
            .iter()
            .map(|&(r, i)| (reg_pos[r.index()], pre_input_pos[i.index()]))
            .collect();

        let regs_removed = ret.regs_before.saturating_sub(ret.regs_after) as u64;
        let cert = Certificate {
            pass: "ret",
            bounds,
            lifter: Lifter::Retime {
                orig_inputs: n.num_inputs(),
                orig_regs: n.num_regs(),
                input_skews,
                target_skews,
                stump,
                init_inputs,
            },
        };
        Some(
            PassOutcome::new(n, ret.netlist, cert)
                .with_details(vec![("regs_removed", regs_removed)]),
        )
    }
}

/// Phase / c-slow abstraction (Theorem 3). Applies only when every target's
/// register support is uni-colored and all targets agree on the color.
#[derive(Debug, Clone)]
pub struct FoldPass {
    /// Folding factor used when the register graph is acyclic (two-phase
    /// designs use 2).
    pub preferred: u32,
}

impl Pass for FoldPass {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn apply(&self, n: &Netlist) -> Option<PassOutcome> {
        let coloring = detect(n, self.preferred);
        if coloring.c < 2 {
            return None;
        }
        // Precomputed gate → register-position map (the old per-lookup
        // `position()` scan made eligibility O(regs²) per target).
        let mut reg_pos = vec![usize::MAX; n.num_gates()];
        for (j, &r) in n.regs().iter().enumerate() {
            reg_pos[r.index()] = j;
        }
        // Theorem 3 speaks about *identically-colored* vertex sets: folding
        // applies only when each target's register support is uni-colored
        // and every target observes the same color.
        let mut keep: Option<u32> = None;
        for t in n.targets() {
            let sup = diam_netlist::analysis::support(n, t.lit);
            for r in sup.regs {
                let c = coloring.colors[reg_pos[r.index()]];
                match keep {
                    None => keep = Some(c),
                    Some(k) if k != c => return None,
                    _ => {}
                }
            }
        }
        let keep = keep.unwrap_or(0);
        let folded = fold(n, &coloring, keep).ok()?;
        let kept = (0..n.num_regs())
            .filter(|&j| coloring.colors[j] == keep)
            .collect();
        let c = u64::from(folded.c);
        let regs_removed = folded.regs_before.saturating_sub(folded.regs_after) as u64;
        let cert = Certificate {
            pass: "fold",
            bounds: vec![vec![BoundStep::Mul(c)]; n.targets().len()],
            lifter: Lifter::Fold {
                c,
                kept,
                orig_regs: n.num_regs(),
            },
        };
        Some(
            PassOutcome::new(n, folded.netlist, cert)
                .with_details(vec![("c", c), ("regs_removed", regs_removed)]),
        )
    }
}

/// k-step target enlargement of every target (Theorem 4).
#[derive(Debug, Clone, Default)]
pub struct EnlargePass(pub EnlargeOptions);

impl Pass for EnlargePass {
    fn name(&self) -> &'static str {
        "enl"
    }

    fn apply(&self, n: &Netlist) -> Option<PassOutcome> {
        let mut current = n.clone();
        let num_targets = n.targets().len();
        let mut bounds = vec![Vec::new(); num_targets];
        let mut ks = vec![None; num_targets];
        let mut enlarged_count = 0u64;
        for i in 0..num_targets {
            if let Ok(enl) = enlarge(&current, i, &self.0) {
                bounds[i].push(BoundStep::Add(u64::from(enl.k)));
                ks[i] = Some(enl.k);
                enlarged_count += 1;
                current = enl.netlist;
            }
        }
        if enlarged_count == 0 {
            return None;
        }
        let cert = Certificate {
            pass: "enl",
            bounds,
            lifter: Lifter::Enlarge { pre: n.clone(), ks },
        };
        Some(PassOutcome::new(n, current, cert).with_details(vec![("enlarged", enlarged_count)]))
    }
}

/// Parametric re-encoding of automatically selected input-fed cuts
/// (Theorem 1).
#[derive(Debug, Clone, Default)]
pub struct ParametricPass;

impl Pass for ParametricPass {
    fn name(&self) -> &'static str {
        "param"
    }

    fn apply(&self, n: &Netlist) -> Option<PassOutcome> {
        let re = reencode_auto(n)?;
        let params = re.params.len() as u64;
        let complete = u64::from(re.complete_range);
        let cert = Certificate {
            pass: "param",
            bounds: vec![Vec::new(); n.targets().len()],
            lifter: Lifter::Parametric {
                pre: n.clone(),
                transformed: re.netlist.clone(),
                cut: re.cut,
                cut_new: re.cut_new,
                input_lits: n.inputs().iter().map(|&i| re.map[i.index()]).collect(),
                nondet_lits: n.regs().iter().map(|&r| re.map[r.index()]).collect(),
            },
        };
        Some(
            PassOutcome::new(n, re.netlist, cert)
                .with_details(vec![("params", params), ("complete_range", complete)]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diam_netlist::Init;

    /// Brute-force search for a witness hitting `lit` at exactly `depth`
    /// (inputs only; nondet inits all false). Test-sized netlists only.
    fn find_witness(n: &Netlist, lit: Lit, depth: usize) -> Option<Witness> {
        let ni = n.num_inputs();
        let bits = ni * (depth + 1);
        assert!(bits <= 16, "test netlist too wide for enumeration");
        for assignment in 0u32..(1 << bits) {
            let inputs: Vec<Vec<bool>> = (0..=depth)
                .map(|t| {
                    (0..ni)
                        .map(|p| (assignment >> (t * ni + p)) & 1 != 0)
                        .collect()
                })
                .collect();
            let w = Witness {
                inputs,
                nondet_init: vec![false; n.num_regs()],
            };
            if w.replays_to(n, lit) {
                return Some(w);
            }
        }
        None
    }

    /// COM certificate: a witness found on the swept netlist (with a merged
    /// register) lifts to a replay-valid witness of the original.
    #[test]
    fn com_certificate_lifts_witnesses() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let r = n.reg("r", Init::Zero);
        let s = n.reg("s", Init::Zero);
        let nr = n.and(r.lit(), a.into());
        let _ = nr;
        n.set_next(r, a.into());
        n.set_next(s, a.into());
        let both = n.and(r.lit(), s.lit());
        n.add_target(both, "both");
        let out = ComPass::default().apply(&n).expect("com always applies");
        assert!(
            out.netlist.num_regs() < n.num_regs(),
            "the lockstep register must merge"
        );
        let t_new = out.netlist.targets()[0].lit;
        let w = find_witness(&out.netlist, t_new, 1).expect("hit at depth 1");
        let lifted = out.cert.lift(0, &w).expect("lift succeeds");
        assert_eq!(lifted.inputs.len(), w.inputs.len(), "COM preserves depth");
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// COI certificate: dropped inputs default to false; surviving inputs
    /// copy through, and the lifted witness replays.
    #[test]
    fn coi_certificate_lifts_witnesses() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let unused = n.input("unused");
        let dead = n.reg("dead", Init::Nondet);
        n.set_next(dead, unused.into());
        let r = n.reg("r", Init::Zero);
        n.set_next(r, a.into());
        n.add_target(r.lit(), "t");
        let out = CoiPass.apply(&n).expect("coi always applies");
        assert_eq!(out.netlist.num_inputs(), 1, "unused input dropped");
        let t_new = out.netlist.targets()[0].lit;
        let w = find_witness(&out.netlist, t_new, 1).expect("hit at depth 1");
        let lifted = out.cert.lift(0, &w).expect("lift succeeds");
        assert_eq!(lifted.inputs[0].len(), 2, "original input arity restored");
        assert_eq!(lifted.nondet_init.len(), 2);
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// RET certificate: a depth-0 witness on the fully retimed pipeline
    /// lifts to the depth-`skew` witness of the original.
    #[test]
    fn retime_certificate_lifts_witnesses() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let mut prev: Lit = i.into();
        for k in 0..3 {
            let r = n.reg(format!("s{k}"), Init::Zero);
            n.set_next(r, prev);
            prev = r.lit();
        }
        n.add_target(prev, "deep");
        let out = RetimePass.apply(&n).expect("pipeline retimes");
        assert_eq!(out.netlist.num_regs(), 0, "all registers retire");
        assert_eq!(out.cert.bound_steps(0), &[BoundStep::Add(3)]);
        let t_new = out.netlist.targets()[0].lit;
        let w = find_witness(&out.netlist, t_new, 0).expect("combinational hit");
        let lifted = out.cert.lift(0, &w).expect("lift succeeds");
        assert_eq!(lifted.inputs.len(), 4, "depth 0 + skew 3 → 4 frames");
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// RET certificate with nondet initial state: the `_init` input columns
    /// fold back into nondet choices.
    #[test]
    fn retime_certificate_recovers_nondet_inits() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let free = n.reg("free", Init::Nondet);
        let r = n.reg("r", Init::Zero);
        n.set_next(r, i.into());
        n.set_next(free, free.lit());
        let t = n.and(r.lit(), free.lit());
        n.add_target(t, "t");
        let Some(out) = RetimePass.apply(&n) else {
            return; // structure not retimable — nothing to check
        };
        let t_new = out.netlist.targets()[0].lit;
        for depth in 0..3 {
            if let Some(w) = find_witness(&out.netlist, t_new, depth) {
                let lifted = out.cert.lift(0, &w).expect("lift succeeds");
                assert!(lifted.replays_to(&n, n.targets()[0].lit));
                return;
            }
        }
        panic!("no witness found on the retimed netlist");
    }

    /// FOLD certificate: a depth-d witness on the folded 2-slow toggle
    /// expands to a replay-valid depth-2d witness of the original.
    #[test]
    fn fold_certificate_lifts_witnesses() {
        let mut n = Netlist::new();
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        n.set_next(a, !b.lit());
        n.set_next(b, a.lit());
        n.add_target(a.lit(), "t");
        let out = FoldPass { preferred: 2 }.apply(&n).expect("2-slow folds");
        assert_eq!(out.netlist.num_regs(), 1);
        assert_eq!(out.cert.bound_steps(0), &[BoundStep::Mul(2)]);
        let t_new = out.netlist.targets()[0].lit;
        let w = find_witness(&out.netlist, t_new, 1).expect("folded hit at 1");
        let lifted = out.cert.lift(0, &w).expect("lift succeeds");
        assert_eq!(lifted.inputs.len(), 3, "2·1 + 1 frames");
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// ENL certificate: a witness hitting the enlarged target {3} of a
    /// 3-bit counter extends by the k-step suffix to hit {5}.
    #[test]
    fn enlarge_certificate_lifts_witnesses() {
        let mut n = Netlist::new();
        let b: Vec<_> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
        let mut carry = Lit::TRUE;
        for &bit in &b {
            let nk = n.xor(bit.lit(), carry);
            carry = n.and(bit.lit(), carry);
            n.set_next(bit, nk);
        }
        let t0 = n.and(b[0].lit(), !b[1].lit());
        let is5 = n.and(t0, b[2].lit());
        n.add_target(is5, "value_is_5");
        let out = EnlargePass(EnlargeOptions {
            k: 2,
            ..Default::default()
        })
        .apply(&n)
        .expect("enlargement applies");
        assert_eq!(out.cert.bound_steps(0), &[BoundStep::Add(2)]);
        let t_new = out.netlist.targets()[0].lit;
        // The enlarged target characterizes {3}: hit at depth 3.
        let w = find_witness(&out.netlist, t_new, 3).expect("enlarged hit at 3");
        let lifted = out.cert.lift(0, &w).expect("suffix extension succeeds");
        assert_eq!(lifted.inputs.len(), 6, "depth 3 + k 2 → 6 frames");
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// PARAM certificate: the per-frame SAT inversion reconstructs cone
    /// inputs producing the observed cut valuations, including for an
    /// incomplete range.
    #[test]
    fn parametric_certificate_lifts_witnesses() {
        let mut n = Netlist::new();
        let a = n.input("a").lit();
        let b = n.input("b").lit();
        let y0 = n.and(a, b);
        let y1 = n.or(a, b);
        let r0 = n.reg("r0", Init::Zero);
        let r1 = n.reg("r1", Init::Zero);
        n.set_next(r0, y0);
        n.set_next(r1, y1);
        let good = n.and(r0.lit(), r1.lit());
        n.add_target(good, "both");
        let out = ParametricPass.apply(&n).expect("auto cut exists");
        let t_new = out.netlist.targets()[0].lit;
        let w = find_witness(&out.netlist, t_new, 1).expect("hit at depth 1");
        let lifted = out.cert.lift(0, &w).expect("lift succeeds");
        assert_eq!(lifted.inputs.len(), w.inputs.len(), "PARAM preserves depth");
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// Composed chain: COM then FOLD on the redundant 2-slow toggle — the
    /// chain lifts through both certificates and the bound steps accumulate.
    #[test]
    fn certificate_chain_composes() {
        let mut n = Netlist::new();
        let a = n.reg("a", Init::Zero);
        let b = n.reg("b", Init::Zero);
        let a2 = n.reg("a2", Init::Zero);
        n.set_next(a, !b.lit());
        n.set_next(b, a.lit());
        n.set_next(a2, !b.lit()); // lockstep copy of `a`
        let t = n.and(a.lit(), a2.lit());
        n.add_target(t, "t");

        let mut chain = CertificateChain::new();
        let com = ComPass::default().apply(&n).expect("com applies");
        chain.push(com.cert);
        let fold = FoldPass { preferred: 2 }
            .apply(&com.netlist)
            .expect("folds after merge");
        chain.push(fold.cert);
        assert_eq!(chain.bound_steps(0), vec![BoundStep::Mul(2)]);
        assert_eq!(chain.prefix_obligation(0), None, "Mul blocks the prefix");

        let t_new = fold.netlist.targets()[0].lit;
        let w = find_witness(&fold.netlist, t_new, 1).expect("folded hit");
        let lifted = chain.lift(0, &w).expect("chain lift succeeds");
        assert!(lifted.replays_to(&n, n.targets()[0].lit));
    }

    /// Prefix obligations: additive chains sum, multiplicative chains void.
    #[test]
    fn prefix_obligation_accounts_adds_only() {
        let mut chain = CertificateChain::new();
        chain.push(Certificate {
            pass: "ret",
            bounds: vec![vec![BoundStep::Add(3)]],
            lifter: Lifter::Identity,
        });
        chain.push(Certificate {
            pass: "enl",
            bounds: vec![vec![BoundStep::Add(2)]],
            lifter: Lifter::Identity,
        });
        assert_eq!(chain.prefix_obligation(0), Some(5));
        chain.push(Certificate {
            pass: "fold",
            bounds: vec![vec![BoundStep::Mul(2)]],
            lifter: Lifter::Identity,
        });
        assert_eq!(chain.prefix_obligation(0), None);
    }

    /// The unified span: `pass.apply` carries the shared stats schema and
    /// pass-specific details for every engine.
    #[test]
    fn apply_traced_skips_are_recorded() {
        // A netlist nothing applies to: fold needs a factor ≥ 2.
        let mut n = Netlist::new();
        let r = n.reg("r", Init::Zero);
        n.set_next(r, !r.lit());
        n.add_target(r.lit(), "t");
        assert!(apply_traced(&FoldPass { preferred: 1 }, &n).is_none());
        let out = apply_traced(&CoiPass, &n).expect("coi applies");
        assert_eq!(out.stats_before.regs, 1);
        assert_eq!(out.stats_after.regs, 1);
    }
}

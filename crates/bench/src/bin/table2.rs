//! Regenerates Table 2 of the paper (phase-abstracted GP-profile suite).
//!
//! Usage: `cargo run -p diam-bench --release --bin table2 [seed] [--jobs <N|seq|auto>]
//! [--obs off|summary|json|live] [--trace-out <path.jsonl>] [--mem on|off] [--limit <N>] [--ecc on|off|k=<N>]`

use diam_bench::{format_sigma, parse_cli, run_suite_opts};
// Memory accounting (`--mem on`) needs the counting allocator installed
// process-wide; while `--mem off` (the default) it costs one relaxed
// atomic load per allocation.
#[global_allocator]
static ALLOC: diam_obs::alloc::CountingAlloc = diam_obs::alloc::CountingAlloc::new();

use diam_gen::gp;

fn main() {
    let cli = parse_cli(
        "table2 [seed] [--jobs <N|seq|auto>] [--obs off|summary|json|live] \
         [--trace-out <path.jsonl>] [--mem on|off] [--limit <N>] [--ecc on|off|k=<N>]",
    );
    let session = cli.session("table2");
    println!(
        "Table 2: diameter bounding experiments, GP-profile suite (seed {}, jobs {})\n",
        cli.seed, cli.jobs
    );
    let suite = cli.clamp(gp::suite(cli.seed));
    let sigma = run_suite_opts(&suite, true, cli.jobs, &cli.ecc);
    println!("\n{}", format_sigma(&sigma, gp::TABLE2_SIGMA));
    cli.finish(session);
}

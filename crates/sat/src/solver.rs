//! A CDCL SAT solver in the MiniSat/Glucose lineage.
//!
//! Features: a flat `u32` clause arena with a compacting garbage collector,
//! two-watched-literal propagation with blockers, VSIDS variable activities
//! with an indexed heap, phase saving, first-UIP conflict analysis with
//! local clause minimization, LBD (glue) computation at learning time,
//! tiered learnt-clause reduction (core / mid / local), Luby restarts with
//! glue-aware postponement, incremental solving under assumptions, level-0
//! inprocessing hooks, and an optional conflict budget for anytime use.
//!
//! ## Clause arena
//!
//! Clauses live contiguously in one `Vec<u32>` ([`Arena`]): a 3-word header
//! (size; flags + LBD; activity as `f32` bits) followed by the literal
//! codes. A [`CRef`] is the word offset of the header. Deletion tombstones
//! the header; the collector ([`Solver::gc`]) compacts live clauses into a
//! fresh arena and rewrites every watcher list, `reason[]` entry, and
//! clause-list reference through forwarding pointers left in the old
//! headers — so long-lived incremental solvers (BMC unrollers held open
//! across hundreds of frames, sweeping loops) stop leaking tombstones.

use crate::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (query it with [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was reached.
    Unknown,
}

/// A clause reference: the word offset of the clause header in the arena.
type CRef = u32;

const NO_REASON: CRef = u32::MAX;

/// Words in a clause header: `[size, flags|lbd, activity]`.
const HEADER_WORDS: usize = 3;
const F_LEARNT: u32 = 1 << 0;
const F_DELETED: u32 = 1 << 1;
const F_RELOCATED: u32 = 1 << 2;
const F_PROTECTED: u32 = 1 << 3;
const LBD_SHIFT: u32 = 4;
const LBD_MAX: u32 = (1 << 28) - 1;

/// Learnt clauses with LBD at or below this are *core*: kept forever.
const CORE_LBD: u32 = 2;
/// Outbox bound for clause export: once full, further learnt clauses stay
/// private until [`Solver::take_shared`] drains the buffer.
const EXPORT_CAP: usize = 1 << 12;
/// Learnt clauses with LBD at or below this are *mid*: they survive a
/// reduction round when recently used in conflict analysis.
const MID_LBD: u32 = 6;

/// The flat clause store. See the module docs for the layout.
#[derive(Debug, Clone, Default)]
struct Arena {
    data: Vec<u32>,
    /// Words occupied by tombstoned clauses and shrunk-away literals;
    /// reclaimable by [`Solver::gc`].
    wasted: usize,
}

impl Arena {
    fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32, activity: f32) -> CRef {
        let r = u32::try_from(self.data.len()).expect("clause arena exceeds u32 words");
        self.data.reserve(HEADER_WORDS + lits.len());
        self.data.push(lits.len() as u32);
        let flags = if learnt { F_LEARNT } else { 0 };
        self.data.push(flags | (lbd.min(LBD_MAX) << LBD_SHIFT));
        self.data.push(activity.to_bits());
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        r
    }

    #[inline]
    fn len(&self, r: CRef) -> usize {
        self.data[r as usize] as usize
    }

    #[inline]
    fn lit(&self, r: CRef, i: usize) -> Lit {
        Lit::from_code(self.data[r as usize + HEADER_WORDS + i] as usize)
    }

    #[inline]
    fn set_lit(&mut self, r: CRef, i: usize, l: Lit) {
        self.data[r as usize + HEADER_WORDS + i] = l.code() as u32;
    }

    #[inline]
    fn flags(&self, r: CRef) -> u32 {
        self.data[r as usize + 1]
    }

    #[inline]
    fn is_learnt(&self, r: CRef) -> bool {
        self.flags(r) & F_LEARNT != 0
    }

    #[inline]
    fn is_deleted(&self, r: CRef) -> bool {
        self.flags(r) & F_DELETED != 0
    }

    #[inline]
    fn is_relocated(&self, r: CRef) -> bool {
        self.flags(r) & F_RELOCATED != 0
    }

    #[inline]
    fn is_protected(&self, r: CRef) -> bool {
        self.flags(r) & F_PROTECTED != 0
    }

    fn set_protected(&mut self, r: CRef, on: bool) {
        if on {
            self.data[r as usize + 1] |= F_PROTECTED;
        } else {
            self.data[r as usize + 1] &= !F_PROTECTED;
        }
    }

    #[inline]
    fn lbd(&self, r: CRef) -> u32 {
        self.flags(r) >> LBD_SHIFT
    }

    #[inline]
    fn activity(&self, r: CRef) -> f32 {
        f32::from_bits(self.data[r as usize + 2])
    }

    #[inline]
    fn set_activity(&mut self, r: CRef, a: f32) {
        self.data[r as usize + 2] = a.to_bits();
    }

    /// Tombstones the clause; the space is reclaimed by the next GC.
    fn delete(&mut self, r: CRef) {
        debug_assert!(!self.is_deleted(r));
        self.wasted += HEADER_WORDS + self.len(r);
        self.data[r as usize + 1] |= F_DELETED;
    }

    /// Shrinks the clause in place to its first `new_len` literals. The
    /// abandoned tail words become waste for the next GC; sequential arena
    /// walks are never performed, so the gap is harmless.
    fn shrink(&mut self, r: CRef, new_len: usize) {
        let old = self.len(r);
        debug_assert!((2..old).contains(&new_len));
        self.wasted += old - new_len;
        self.data[r as usize] = new_len as u32;
    }

    /// Copies the clause into `new`, leaves a forwarding pointer in the old
    /// header, and returns the new reference. Idempotent.
    fn relocate(&mut self, r: CRef, new: &mut Vec<u32>) -> CRef {
        if self.is_relocated(r) {
            return self.forward(r);
        }
        debug_assert!(!self.is_deleted(r));
        let nr = u32::try_from(new.len()).expect("clause arena exceeds u32 words");
        let start = r as usize;
        new.extend_from_slice(&self.data[start..start + HEADER_WORDS + self.len(r)]);
        self.data[start] = nr; // size word becomes the forwarding pointer
        self.data[start + 1] |= F_RELOCATED;
        nr
    }

    /// The forwarding pointer of a relocated clause.
    #[inline]
    fn forward(&self, r: CRef) -> CRef {
        debug_assert!(self.is_relocated(r));
        self.data[r as usize]
    }

    /// Current arena footprint in bytes (live + tombstoned).
    fn bytes(&self) -> usize {
        self.data.len() * 4
    }
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: CRef,
    blocker: Lit,
}

/// Runtime statistics of a [`Solver`].
///
/// Most fields are monotone counters; `learnts`, `arena_bytes`, and
/// `arena_wasted_bytes` are *levels* (current values). See
/// [`delta_since`](SolverStats::delta_since) for the distinction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Restarts postponed by the glue-aware (trail-size) heuristic.
    pub blocked_restarts: u64,
    /// Learnt clauses currently in the database (level, not counter).
    pub learnts: u64,
    /// Arena garbage-collection passes performed.
    pub gc_runs: u64,
    /// Total bytes reclaimed by arena GC so far.
    pub gc_freed_bytes: u64,
    /// Current clause-arena footprint in bytes (level, not counter).
    pub arena_bytes: u64,
    /// Bytes currently tombstoned awaiting GC (level, not counter).
    pub arena_wasted_bytes: u64,
    /// Sum of LBD (glue) over all clauses learnt so far.
    pub lbd_sum: u64,
    /// Histogram of learnt-clause LBD: bucket `i < 7` counts clauses with
    /// `lbd == i + 1`; bucket 7 counts `lbd >= 8`.
    pub lbd_hist: [u64; 8],
    /// Clauses exported for sharing (glue at or below the share threshold).
    pub shared_out: u64,
    /// Clauses imported from sibling solvers via
    /// [`import_clause`](Solver::import_clause).
    pub shared_in: u64,
    /// Cube obligations this solver refuted (maintained by the
    /// cube-and-conquer orchestrator via
    /// [`mark_cube_refuted`](Solver::mark_cube_refuted)).
    pub cubes_refuted: u64,
}

impl SolverStats {
    /// The work performed since `earlier` was snapshotted: the monotone
    /// counters subtract (saturating, so misuse never panics); `learnts`,
    /// `arena_bytes`, and `arena_wasted_bytes` are levels, not counters,
    /// and carry the *current* value.
    ///
    /// # Examples
    ///
    /// ```
    /// use diam_sat::Solver;
    ///
    /// let mut s = Solver::new();
    /// let before = *s.stats_ref();
    /// let a = s.new_var().positive();
    /// s.add_clause([a]);
    /// s.solve();
    /// let delta = s.stats_ref().delta_since(&before);
    /// assert_eq!(delta.conflicts, 0);
    /// ```
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        let mut lbd_hist = [0u64; 8];
        for (d, (now, then)) in lbd_hist
            .iter_mut()
            .zip(self.lbd_hist.iter().zip(earlier.lbd_hist.iter()))
        {
            *d = now.saturating_sub(*then);
        }
        SolverStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            blocked_restarts: self
                .blocked_restarts
                .saturating_sub(earlier.blocked_restarts),
            learnts: self.learnts,
            gc_runs: self.gc_runs.saturating_sub(earlier.gc_runs),
            gc_freed_bytes: self.gc_freed_bytes.saturating_sub(earlier.gc_freed_bytes),
            arena_bytes: self.arena_bytes,
            arena_wasted_bytes: self.arena_wasted_bytes,
            lbd_sum: self.lbd_sum.saturating_sub(earlier.lbd_sum),
            lbd_hist,
            shared_out: self.shared_out.saturating_sub(earlier.shared_out),
            shared_in: self.shared_in.saturating_sub(earlier.shared_in),
            cubes_refuted: self.cubes_refuted.saturating_sub(earlier.cubes_refuted),
        }
    }
}

/// An incremental CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use diam_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// s.add_clause([!b]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    ca: Arena,
    /// Problem (original) clause references, insertion order.
    clauses: Vec<CRef>,
    /// Learnt clause references, insertion order.
    learnts: Vec<CRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<CRef>, // NO_REASON = decision / unassigned
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // VSIDS.
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,
    heap_pos: Vec<usize>, // usize::MAX = not in heap
    polarity: Vec<bool>,
    // Conflict analysis scratch.
    seen: Vec<bool>,
    // LBD computation scratch: level → stamp of the current computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    // Exponential moving average of the trail size at conflicts; large
    // current trails (search deep in a satisfying-looking region) postpone
    // restarts (Glucose-style blocking, here on top of Luby).
    trail_ema: f64,
    // Trail length at the last `simplify`; gates `inprocess`.
    simplified_at: usize,
    // Clause activities.
    cla_inc: f64,
    ok: bool,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    max_learnts: f64,
    model: Vec<LBool>,
    conflict_core: Vec<Lit>,
    // Clause sharing (cube-and-conquer): learnt clauses with LBD at or
    // below this travel — copies land in `export_buf` for the orchestrator
    // to broadcast. 0 disables export.
    share_lbd_max: u32,
    export_buf: Vec<Vec<Lit>>,
    // Portfolio knobs. Seed 0 (default) means "exactly the deterministic
    // baseline behaviour"; nonzero seeds jitter restart limits / initial
    // phases per worker so a portfolio explores different search orders.
    restart_seed: u64,
    restart_rng: u64,
    phase_seed: u64,
    phase_rng: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            ca: Arena::default(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            polarity: Vec::new(),
            seen: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            trail_ema: 0.0,
            simplified_at: 0,
            cla_inc: 1.0,
            ok: true,
            stats: SolverStats::default(),
            conflict_budget: None,
            max_learnts: 1000.0,
            model: Vec::new(),
            conflict_core: Vec::new(),
            share_lbd_max: 0,
            export_buf: Vec::new(),
            restart_seed: 0,
            restart_rng: 0,
            phase_seed: 0,
            phase_rng: 0,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        let phase = if self.phase_seed != 0 {
            self.phase_rng = splitmix64(self.phase_rng);
            self.phase_rng & 1 == 1
        } else {
            false
        };
        self.polarity.push(phase);
        self.seen.push(false);
        self.heap_pos.push(usize::MAX);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Current clause-arena footprint in bytes (live clauses plus
    /// tombstones awaiting [`gc`](Solver::gc)).
    pub fn arena_bytes(&self) -> usize {
        self.ca.bytes()
    }

    /// Solver statistics accumulated so far.
    ///
    /// All fields — including `learnts` — are maintained incrementally, so
    /// this is a cheap copy; use [`stats_ref`](Solver::stats_ref) to avoid
    /// even that, or [`SolverStats::delta_since`] to attribute work to a
    /// single solve call.
    pub fn stats(&self) -> SolverStats {
        debug_assert_eq!(
            self.stats.learnts,
            self.learnts
                .iter()
                .filter(|&&r| !self.ca.is_deleted(r))
                .count() as u64,
            "incremental learnt-clause counter out of sync"
        );
        self.stats
    }

    /// Borrows the statistics without copying — the snapshot half of the
    /// per-call delta pattern:
    ///
    /// ```
    /// use diam_sat::{SolveResult, Solver};
    ///
    /// let mut s = Solver::new();
    /// let (a, b) = (s.new_var().positive(), s.new_var().positive());
    /// s.add_clause([a, b]);
    /// let before = *s.stats_ref();
    /// assert_eq!(s.solve(), SolveResult::Sat);
    /// let spent = s.stats_ref().delta_since(&before);
    /// assert!(spent.propagations <= s.stats_ref().propagations);
    /// ```
    pub fn stats_ref(&self) -> &SolverStats {
        &self.stats
    }

    /// Limits the number of conflicts per [`solve`](Solver::solve) call;
    /// `None` removes the limit. When the budget is exhausted, `solve`
    /// returns [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Enables clause export: learnt clauses with LBD (glue) at or below
    /// `lbd` are copied into an internal outbox for
    /// [`take_shared`](Solver::take_shared). `0` (the default) disables
    /// export. The canonical threshold is the core tier (`lbd = 2`): glue
    /// clauses travel, mid/local learnts stay private.
    pub fn set_share_lbd_max(&mut self, lbd: u32) {
        self.share_lbd_max = lbd;
    }

    /// Drains the outbox of clauses exported since the last call. Clauses
    /// are over this solver's variable numbering; a sibling sharing the
    /// same encoding (e.g. a clone of a common base solver) can
    /// [`import_clause`](Solver::import_clause) them soundly.
    pub fn take_shared(&mut self) -> Vec<Vec<Lit>> {
        std::mem::take(&mut self.export_buf)
    }

    /// Sets the restart-jitter seed for portfolio mode: each Luby restart
    /// period is scaled by a seed-deterministic factor in `[0.5, 1.5)`.
    /// Seed `0` (the default) restores exact Luby limits. Jitter changes
    /// only the search order, never answers.
    pub fn set_restart_seed(&mut self, seed: u64) {
        self.restart_seed = seed;
        self.restart_rng = seed;
    }

    /// Sets the initial-phase seed for portfolio mode: variables created
    /// *after* this call get a seed-deterministic initial polarity instead
    /// of `false`. Seed `0` (the default) restores all-false initial
    /// phases. Affects only the search order, never answers.
    pub fn set_phase_seed(&mut self, seed: u64) {
        self.phase_seed = seed;
        self.phase_rng = seed;
    }

    /// Records one refuted cube obligation (bookkeeping for the
    /// cube-and-conquer orchestrator; flows through
    /// [`SolverStats::delta_since`] into per-span attribution).
    pub fn mark_cube_refuted(&mut self) {
        self.stats.cubes_refuted += 1;
    }

    /// Imports a clause learnt by a sibling solver over the **same
    /// variable numbering** (a cube worker cloned from a common base
    /// encoding). Learnt clauses are formula-implied even when derived
    /// under assumptions — assumptions enter the search as decisions and
    /// conflict analysis resolves only on reason clauses — so importing
    /// them preserves both satisfiability and unsatisfiability. Must be
    /// called at decision level 0. Returns `false` if the solver is (or
    /// becomes) unsatisfiable at the root.
    pub fn import_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "import_clause above decision level 0"
        );
        if !self.ok {
            return false;
        }
        if lits.iter().any(|l| l.var().index() >= self.num_vars()) {
            // Foreign variable (exporter encoded further than us): sharing
            // is best-effort, drop the clause.
            return true;
        }
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable_by_key(|l| l.code());
        lits.dedup();
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // p ∨ ¬p: tautology
            }
            i += 1;
        }
        if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true; // already root-satisfied
        }
        lits.retain(|&l| self.lit_value(l) != LBool::False);
        self.stats.shared_in += 1;
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                // Stored as a core-tier learnt (imports are glue clauses by
                // the export filter), so reduction keeps it.
                let r = self.ca.alloc(&lits, true, CORE_LBD, 0.0);
                self.learnts.push(r);
                self.watch(lits[0], lits[1], r);
                self.watch(lits[1], lits[0], r);
                self.stats.learnts += 1;
                self.sync_arena_stats();
                true
            }
        }
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (either before the call or because of this
    /// clause).
    ///
    /// # Panics
    ///
    /// Panics if called while the solver holds a partial assignment from an
    /// interrupted solve (this implementation always returns to decision
    /// level 0, so this cannot happen through the public API).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "add_clause above decision level 0"
        );
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable_by_key(|l| l.code());
        lits.dedup();
        // Remove false literals; detect tautologies and satisfied clauses.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // p ∨ ¬p: tautology
            }
            i += 1;
        }
        lits.retain(|&l| self.lit_value(l) != LBool::False);
        if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let r = self.ca.alloc(&lits, false, 0, 0.0);
                self.clauses.push(r);
                self.watch(lits[0], lits[1], r);
                self.watch(lits[1], lits[0], r);
                self.sync_arena_stats();
                true
            }
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions. On [`SolveResult::Unsat`] the
    /// formula itself may still be satisfiable without the assumptions; the
    /// solver remains usable either way.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert!(self.trail_lim.is_empty());
        let budget_start = self.stats.conflicts;
        let mut luby_index: u64 = 0;
        let result = loop {
            let mut restart_limit = 64 * luby(luby_index);
            if self.restart_seed != 0 {
                // Portfolio jitter: scale each Luby period by a
                // seed-deterministic factor in [0.5, 1.5).
                self.restart_rng = splitmix64(self.restart_rng);
                restart_limit = (restart_limit * (512 + self.restart_rng % 1024) / 1024).max(1);
            }
            luby_index += 1;
            match self.search(assumptions, restart_limit, budget_start) {
                Some(r) => break r,
                None => {
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            }
        };
        if result == SolveResult::Sat {
            self.model = self.assigns.clone();
        } else {
            self.model.clear();
        }
        self.cancel_until(0);
        result
    }

    /// The model value of `l` after a [`SolveResult::Sat`] answer (`None`
    /// for variables the search never assigned — any value satisfies —
    /// or when no model is available).
    pub fn value(&self, l: Lit) -> Option<bool> {
        let v = match self.model.get(l.var().index()) {
            Some(&v) => v,
            None => return None,
        };
        match if l.is_negative() { v.negate() } else { v } {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    // --- internals -------------------------------------------------------

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            v.negate()
        } else {
            v
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn watch(&mut self, lit: Lit, blocker: Lit, clause: CRef) {
        // A clause watching `lit` must be revisited when `¬lit` is enqueued.
        self.watches[(!lit).code()].push(Watcher { clause, blocker });
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: CRef) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(!l.is_negative());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Copies a freshly learnt clause into the outbox when sharing is on
    /// and the clause's glue passes the travel filter.
    fn export_learnt(&mut self, lits: &[Lit], lbd: u32) {
        if self.share_lbd_max != 0
            && lbd <= self.share_lbd_max
            && self.export_buf.len() < EXPORT_CAP
        {
            self.export_buf.push(lits.to_vec());
            self.stats.shared_out += 1;
        }
    }

    fn sync_arena_stats(&mut self) {
        self.stats.arena_bytes = self.ca.bytes() as u64;
        self.stats.arena_wasted_bytes = (self.ca.wasted * 4) as u64;
    }

    /// Propagates all enqueued facts; returns the conflicting clause.
    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let r = w.clause;
                if self.ca.is_deleted(r) {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize: the false literal (¬p) goes to position 1.
                let false_lit = !p;
                if self.ca.lit(r, 0) == false_lit {
                    let other = self.ca.lit(r, 1);
                    self.ca.set_lit(r, 0, other);
                    self.ca.set_lit(r, 1, false_lit);
                }
                debug_assert_eq!(self.ca.lit(r, 1), false_lit);
                let first = self.ca.lit(r, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new watch.
                let n = self.ca.len(r);
                for k in 2..n {
                    let cand = self.ca.lit(r, k);
                    if self.lit_value(cand) != LBool::False {
                        self.ca.set_lit(r, 1, cand);
                        self.ca.set_lit(r, k, false_lit);
                        self.watch(cand, first, r);
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch: unit or conflicting.
                ws[i].blocker = first;
                i += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(r);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, r);
            }
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: CRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder slot
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(conflict);
            // Visit the literals of the reason clause (skipping the implied
            // literal itself when this is not the conflict clause).
            let start = usize::from(p.is_some());
            let n = self.ca.len(conflict);
            for k in start..n {
                let q = self.ca.lit(conflict, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            conflict = self.reason[lit.var().index()];
            debug_assert_ne!(conflict, NO_REASON);
        }

        // Local minimization: drop literals whose reason is subsumed by the
        // rest of the learnt clause.
        for l in &learnt[1..] {
            self.seen[l.var().index()] = true;
        }
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            let r = self.reason[l.var().index()];
            let redundant = r != NO_REASON && {
                let n = self.ca.len(r);
                (1..n).all(|k| {
                    let q = self.ca.lit(r, k);
                    self.seen[q.var().index()] || self.level[q.var().index()] == 0
                })
            };
            if !redundant {
                minimized.push(l);
            }
        }
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        let learnt = minimized;

        // Backtrack level = second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            self.level[learnt[max_i].var().index()]
        };
        (learnt, bt)
    }

    fn cancel_until(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let bound = self.trail_lim[lvl as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.polarity[v] = self.assigns[v] == LBool::True;
            self.assigns[v] = LBool::Undef;
            self.reason[v] = NO_REASON;
            self.heap_insert(l.var());
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    /// The LBD ("glue") of a clause: the number of distinct decision levels
    /// among its literals. Computed with a stamped level map, no clearing.
    ///
    /// Called from [`learn`](Self::learn) *after* the backtrack: the
    /// asserting literal's variable was just unassigned, but its `level[]`
    /// entry still holds the conflict level — which is strictly greater
    /// than every other literal's level, so the count is exactly the
    /// pre-backtrack LBD.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            if lev == 0 {
                continue;
            }
            if lev >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lev + 1, 0);
            }
            if self.lbd_stamp[lev] != self.lbd_counter {
                self.lbd_stamp[lev] = self.lbd_counter;
                lbd += 1;
            }
        }
        lbd.max(1)
    }

    fn learn(&mut self, lits: &[Lit]) -> CRef {
        debug_assert!(lits.len() >= 2);
        let lbd = self.compute_lbd(lits);
        self.export_learnt(lits, lbd);
        let r = self.ca.alloc(lits, true, lbd, self.cla_inc as f32);
        self.learnts.push(r);
        self.watch(lits[0], lits[1], r);
        self.watch(lits[1], lits[0], r);
        self.stats.learnts += 1;
        self.stats.lbd_sum += u64::from(lbd);
        self.stats.lbd_hist[(lbd as usize).clamp(1, 8) - 1] += 1;
        self.sync_arena_stats();
        r
    }

    /// One restart period of CDCL search. `None` = restart requested.
    fn search(
        &mut self,
        assumptions: &[Lit],
        restart_limit: u64,
        budget_start: u64,
    ) -> Option<SolveResult> {
        let mut conflicts_here: u64 = 0;
        let mut postponements: u32 = 0;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                // Glue-aware restart postponement input: track the average
                // trail size at conflicts.
                self.trail_ema += (self.trail.len() as f64 - self.trail_ema) * (1.0 / 1024.0);
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict within (or below) the assumption prefix:
                    // compute the subset of assumptions responsible.
                    self.analyze_final_clause(conflict, assumptions);
                    if self.decision_level() == 0 {
                        self.ok = false;
                    }
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(conflict);
                // Never backtrack into the middle of the assumption prefix
                // without re-deciding the assumptions: cancel to max(bt, —)
                // is handled by re-entering the decision loop below.
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.export_learnt(&learnt, 1);
                    if self.decision_level() > 0 {
                        // Unit learnt while above level 0 (can happen when
                        // assumptions are re-decided); back out fully.
                        self.cancel_until(0);
                    }
                    if self.lit_value(learnt[0]) == LBool::False {
                        self.ok = false;
                        return Some(SolveResult::Unsat);
                    }
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], NO_REASON);
                    }
                } else {
                    let r = self.learn(&learnt);
                    self.unchecked_enqueue(learnt[0], r);
                }
                self.decay_activities();
                if let Some(b) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= b {
                        return Some(SolveResult::Unknown);
                    }
                }
                if conflicts_here >= restart_limit {
                    // Glue-aware postponement on top of Luby: a trail much
                    // larger than the running average means the search is
                    // deep in a promising region — postpone the restart
                    // (bounded per period so Luby keeps its schedule).
                    if self.stats.conflicts > 1000
                        && postponements < 3
                        && self.trail.len() as f64 > 1.4 * self.trail_ema
                    {
                        postponements += 1;
                        self.stats.blocked_restarts += 1;
                        conflicts_here = 0;
                    } else {
                        return None;
                    }
                }
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                // Decide: assumptions first, then VSIDS.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied; open an empty level for it.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final_lit(a, assumptions);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return Some(SolveResult::Sat),
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = v.lit(self.polarity[v.index()]);
                        self.unchecked_enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    /// Tiered learnt-clause reduction:
    ///
    /// * **core** (`lbd <= 2`), binary, and locked (reason) clauses are
    ///   kept unconditionally;
    /// * **mid** (`lbd <= 6`) clauses that were used in conflict analysis
    ///   since the last reduction survive one round (their protection bit
    ///   is cleared — they must earn the next reprieve);
    /// * everything else is a removal candidate: the worse half by
    ///   (LBD desc, activity asc) is tombstoned, selected with
    ///   `select_nth_unstable_by` instead of a full sort.
    fn reduce_db(&mut self) {
        let mut cands: Vec<CRef> = Vec::new();
        for i in 0..self.learnts.len() {
            let r = self.learnts[i];
            if self.ca.is_deleted(r) || self.ca.len(r) <= 2 || self.is_locked(r) {
                continue;
            }
            let lbd = self.ca.lbd(r);
            if lbd <= CORE_LBD {
                continue;
            }
            if lbd <= MID_LBD && self.ca.is_protected(r) {
                self.ca.set_protected(r, false);
                continue;
            }
            cands.push(r);
        }
        if cands.len() >= 2 {
            let mid = cands.len() / 2;
            let ca = &self.ca;
            // Worse-first: higher LBD, then lower activity.
            cands.select_nth_unstable_by(mid, |&a, &b| {
                ca.lbd(b).cmp(&ca.lbd(a)).then(
                    ca.activity(a)
                        .partial_cmp(&ca.activity(b))
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            for &r in cands.iter().take(mid) {
                self.remove_clause(r);
            }
        }
        let ca = &self.ca;
        self.learnts.retain(|&r| !ca.is_deleted(r));
        self.maybe_gc();
    }

    fn remove_clause(&mut self, r: CRef) {
        debug_assert!(!self.ca.is_deleted(r));
        if self.ca.is_learnt(r) {
            self.stats.learnts -= 1;
        }
        self.ca.delete(r);
        self.sync_arena_stats();
    }

    /// Whether the clause is the reason of a currently-assigned variable
    /// *above* level 0. Level-0 reasons are never dereferenced (conflict
    /// analysis and core extraction both stop at level 0), so root-satisfied
    /// reason clauses stay removable; GC clears their dangling `reason[]`
    /// entries.
    fn is_locked(&self, r: CRef) -> bool {
        if self.ca.len(r) == 0 {
            return false;
        }
        let v = self.ca.lit(r, 0).var().index();
        self.reason[v] == r && self.assigns[v] != LBool::Undef && self.level[v] > 0
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(v);
    }

    fn bump_clause(&mut self, r: CRef) {
        if !self.ca.is_learnt(r) {
            return;
        }
        let a = self.ca.activity(r) + self.cla_inc as f32;
        self.ca.set_activity(r, a);
        // Used in conflict analysis: refresh the mid-tier reprieve.
        self.ca.set_protected(r, true);
        if a > 1e20 {
            for i in 0..self.learnts.len() {
                let lr = self.learnts[i];
                let scaled = self.ca.activity(lr) * 1e-20;
                self.ca.set_activity(lr, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Level-0 simplification: removes clauses satisfied by root-level
    /// facts and strips falsified literals from the rest. Cheap, and keeps
    /// long-lived incremental solvers (BMC unrollers, sweeping loops) lean.
    /// Runs the arena collector afterwards when enough waste accumulated.
    /// Returns the number of clauses removed.
    pub fn simplify(&mut self) -> usize {
        assert!(self.trail_lim.is_empty(), "simplify above decision level 0");
        if !self.ok {
            return 0;
        }
        let mut removed = 0;
        let total = self.clauses.len() + self.learnts.len();
        for idx in 0..total {
            let r = if idx < self.clauses.len() {
                self.clauses[idx]
            } else {
                self.learnts[idx - self.clauses.len()]
            };
            if self.ca.is_deleted(r) || self.is_locked(r) {
                continue;
            }
            // At level 0 every assignment is a root fact.
            let n = self.ca.len(r);
            let satisfied = (0..n).any(|k| self.lit_value(self.ca.lit(r, k)) == LBool::True);
            if satisfied {
                self.remove_clause(r);
                removed += 1;
                continue;
            }
            // Strip root-false literals from the tail only: positions 0/1
            // are the watched pair and must not move (watcher lists refer
            // to them); a root-false watch is harmless and migrates on its
            // own during propagation.
            if n > 2 {
                let mut w = 2;
                for k in 2..n {
                    let l = self.ca.lit(r, k);
                    if self.lit_value(l) != LBool::False {
                        if w != k {
                            self.ca.set_lit(r, w, l);
                        }
                        w += 1;
                    }
                }
                if w < n {
                    self.ca.shrink(r, w);
                }
            }
        }
        let ca = &self.ca;
        self.clauses.retain(|&r| !ca.is_deleted(r));
        self.learnts.retain(|&r| !ca.is_deleted(r));
        self.simplified_at = self.trail.len();
        self.sync_arena_stats();
        self.maybe_gc();
        removed
    }

    /// Level-0 inprocessing hook for incremental callers (BMC depth loops,
    /// sweeping rounds): call it at natural boundaries — e.g. after each
    /// UNSAT depth — and it decides internally whether any work is worth
    /// doing. [`simplify`](Solver::simplify) runs only when new root facts
    /// arrived since the last pass; the collector runs only past its waste
    /// threshold. Calling this every round is safe and cheap.
    pub fn inprocess(&mut self) {
        assert!(
            self.trail_lim.is_empty(),
            "inprocess above decision level 0"
        );
        if !self.ok {
            return;
        }
        if self.trail.len() > self.simplified_at {
            self.simplify(); // also runs maybe_gc
        } else {
            self.maybe_gc();
        }
    }

    /// Runs the collector when at least 25% of the arena (and a minimum
    /// absolute amount) is waste.
    fn maybe_gc(&mut self) {
        if self.ca.wasted >= 256 && self.ca.wasted * 4 >= self.ca.data.len() {
            self.gc();
        }
    }

    /// Compacts the clause arena: copies live clauses into a fresh arena
    /// (insertion order preserved) and rewrites every watcher list,
    /// `reason[]` entry, and internal clause list through forwarding
    /// pointers. Returns the number of bytes reclaimed.
    ///
    /// Safe at any decision level: reasons of assigned variables are
    /// remapped; dangling level-0 reasons (their clause was removed by
    /// [`simplify`](Solver::simplify)/reduction — legal because level-0
    /// reasons are never dereferenced) are cleared.
    pub fn gc(&mut self) -> usize {
        let old_bytes = self.ca.bytes();
        let live_words = self.ca.data.len().saturating_sub(self.ca.wasted);
        let mut new_data: Vec<u32> = Vec::with_capacity(live_words);

        // Relocate via the clause lists (every live clause is in exactly
        // one); drop tombstones from the lists as we go.
        let mut clauses = std::mem::take(&mut self.clauses);
        clauses.retain_mut(|r| {
            if self.ca.is_deleted(*r) {
                false
            } else {
                *r = self.ca.relocate(*r, &mut new_data);
                true
            }
        });
        self.clauses = clauses;
        let mut learnts = std::mem::take(&mut self.learnts);
        learnts.retain_mut(|r| {
            if self.ca.is_deleted(*r) {
                false
            } else {
                *r = self.ca.relocate(*r, &mut new_data);
                true
            }
        });
        self.learnts = learnts;

        // Rewrite watchers: live clauses forward, tombstones drop.
        let ca = &self.ca;
        for wl in self.watches.iter_mut() {
            wl.retain_mut(|w| {
                if ca.is_relocated(w.clause) {
                    w.clause = ca.forward(w.clause);
                    true
                } else {
                    debug_assert!(ca.is_deleted(w.clause));
                    false
                }
            });
        }

        // Rewrite reasons. A reason pointing at a tombstone can only belong
        // to a level-0 assignment (reduction/simplify never delete clauses
        // locked above level 0); those reasons are never read again — clear.
        for v in 0..self.reason.len() {
            let r = self.reason[v];
            if r == NO_REASON {
                continue;
            }
            if self.ca.is_relocated(r) {
                self.reason[v] = self.ca.forward(r);
            } else {
                debug_assert!(self.ca.is_deleted(r));
                debug_assert!(self.assigns[v] == LBool::Undef || self.level[v] == 0);
                self.reason[v] = NO_REASON;
            }
        }

        self.ca.data = new_data;
        self.ca.wasted = 0;
        let freed = old_bytes - self.ca.bytes();
        self.stats.gc_runs += 1;
        self.stats.gc_freed_bytes += freed as u64;
        self.sync_arena_stats();
        freed
    }

    /// The subset of the last call's assumptions that were proven jointly
    /// contradictory with the formula (non-empty only after an
    /// assumption-level [`SolveResult::Unsat`]). Analogous to MiniSat's
    /// final conflict clause; useful for incremental BMC and sweeping.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Walks reasons from a conflicting clause back to the assumption
    /// decisions, filling `conflict_core`.
    fn analyze_final_clause(&mut self, conflict: CRef, assumptions: &[Lit]) {
        let lits: Vec<Lit> = (0..self.ca.len(conflict))
            .map(|k| self.ca.lit(conflict, k))
            .collect();
        self.trace_to_assumptions(&lits, assumptions);
    }

    /// Like [`Self::analyze_final_clause`] for a single already-false
    /// assumption literal.
    fn analyze_final_lit(&mut self, a: Lit, assumptions: &[Lit]) {
        self.trace_to_assumptions(&[!a], assumptions);
        if !self.conflict_core.contains(&a) {
            self.conflict_core.push(a);
        }
    }

    fn trace_to_assumptions(&mut self, seed: &[Lit], assumptions: &[Lit]) {
        self.conflict_core.clear();
        let mut seen = vec![false; self.num_vars()];
        let mut stack: Vec<Var> = seed.iter().map(|l| l.var()).collect();
        while let Some(v) = stack.pop() {
            if seen[v.index()] || self.level[v.index()] == 0 {
                continue;
            }
            seen[v.index()] = true;
            let reason = self.reason[v.index()];
            if reason == NO_REASON {
                // A decision: within the assumption prefix every decision is
                // an assumption.
                if let Some(&a) = assumptions.iter().find(|a| a.var() == v) {
                    if !self.conflict_core.contains(&a) {
                        self.conflict_core.push(a);
                    }
                }
            } else {
                for k in 0..self.ca.len(reason) {
                    stack.push(self.ca.lit(reason, k).var());
                }
            }
        }
    }

    // --- indexed max-heap on activity -------------------------------------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.index()] != usize::MAX {
            return;
        }
        self.heap_pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, v: Var) {
        let pos = self.heap_pos[v.index()];
        if pos != usize::MAX {
            self.heap_up(pos);
        }
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.index()] = usize::MAX;
        let last = self.heap.pop().expect("heap nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a].index()] = a;
        self.heap_pos[self.heap[b].index()] = b;
    }
}

/// One SplitMix64 step: the seed-jitter PRNG behind the portfolio knobs.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Luby restart sequence (0-indexed): 1,1,2,1,1,2,4,...
fn luby(index: u64) -> u64 {
    let mut i = index + 1;
    loop {
        // k = number of bits of i, so 2^(k-1) <= i < 2^k.
        let k = 64 - u64::from(i.leading_zeros());
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i = i - (1 << (k - 1)) + 1;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math here
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        s.add_clause([!v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &l in &v {
            assert_eq!(s.value(l), Some(true));
        }
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([v[0]]);
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0], !v[0]]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for i in 0..3 {
            s.add_clause([p[i][0], p[i][1]]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_respected_and_removable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
        // Without assumptions still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn duplicate_assumptions_are_harmless() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([!v[0], v[1]]);
        assert_eq!(s.solve_with(&[v[0], v[0], v[0]]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // Duplicates in an UNSAT query don't confuse the core either.
        s.add_clause([!v[1]]);
        assert_eq!(s.solve_with(&[v[0], v[0]]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&v[0]), "core {core:?}");
    }

    #[test]
    fn contradictory_assumptions_are_unsat_with_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]); // keep the formula satisfiable
        assert_eq!(s.solve_with(&[v[0], !v[0]]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(
            core.contains(&v[0]) && core.contains(&!v[0]),
            "core must name both sides of the contradiction: {core:?}"
        );
        // The solver stays usable and the formula is still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Order flipped: still Unsat, still both sides.
        assert_eq!(s.solve_with(&[!v[0], v[0]]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(
            core.contains(&v[0]) && core.contains(&!v[0]),
            "core {core:?}"
        );
    }

    #[test]
    fn xor_chain_parity() {
        // Encode x0 ^ x1 ^ x2 = 1 via CNF; satisfiable, then force all-false.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let clauses: [[i32; 3]; 4] = [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]];
        for signs in clauses {
            let lits: Vec<Lit> = v
                .iter()
                .zip(signs)
                .map(|(&l, s)| if s > 0 { l } else { !l })
                .collect();
            s.add_clause(lits);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let parity = s.value(v[0]).unwrap() ^ s.value(v[1]).unwrap() ^ s.value(v[2]).unwrap();
        assert!(parity);
        assert_eq!(s.solve_with(&[!v[0], !v[1], !v[2]]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_yields_unknown_or_answer() {
        // A moderately hard pigeonhole with a 1-conflict budget should give
        // Unknown (it needs many conflicts).
        let mut s = Solver::new();
        let n = 6;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simplify_removes_satisfied_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[2], v[3]]);
        s.add_clause([!v[0], v[2], v[3]]);
        s.add_clause([v[0]]); // root fact satisfies clause 0
        let removed = s.simplify();
        assert!(removed >= 1, "removed {removed}");
        // Solver behaviour is unchanged.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!v[2], !v[3]]), SolveResult::Unsat);
    }

    #[test]
    fn simplify_strips_root_false_literals() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0], v[1], v[2], v[3]]);
        s.add_clause([!v[0]]);
        s.simplify();
        // The solver must still behave as (v1 ∨ v2 ∨ v3).
        assert_eq!(s.solve_with(&[!v[1], !v[2], !v[3]]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[!v[1], !v[2]]), SolveResult::Sat);
        assert_eq!(s.value(v[3]), Some(true));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([!v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let st = s.stats();
        assert!(st.decisions > 0 || st.propagations > 0);
        // The solver stays reusable and stats are monotone.
        assert_eq!(s.solve_with(&[!v[1]]), SolveResult::Sat);
        assert!(s.stats().decisions >= st.decisions);
    }

    #[test]
    fn unsat_core_names_the_guilty_assumptions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // v0 -> v1, v2 -> v3; assume v0, !v1 (contradictory) and v2 (innocent).
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[2], v[3]]);
        assert_eq!(s.solve_with(&[v[2], v[0], !v[1]]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(
            core.contains(&v[0]) || core.contains(&!v[1]),
            "core {core:?}"
        );
        assert!(
            !core.contains(&v[2]),
            "innocent assumption in core {core:?}"
        );
    }

    #[test]
    fn unsat_core_for_directly_false_assumption() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0]]); // unit: v0 true at level 0
        assert_eq!(s.solve_with(&[v[1], !v[0]]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&!v[0]), "core {core:?}");
        assert!(!core.contains(&v[1]), "core {core:?}");
    }

    #[test]
    fn core_is_empty_on_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        assert_eq!(s.solve_with(&[v[0]]), SolveResult::Sat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn gc_reclaims_tombstoned_arena_bytes() {
        let mut s = Solver::new();
        let v = vars(&mut s, 20);
        // Many clauses that a root fact will satisfy (→ tombstones).
        for i in 1..20 {
            s.add_clause([v[0], v[i % 20], v[(i + 1) % 20]]);
        }
        s.add_clause([v[0]]); // satisfies every clause above
        let before = s.stats().arena_bytes;
        assert!(before > 0);
        let removed = s.simplify();
        assert!(removed >= 19, "removed {removed}");
        // simplify may or may not have crossed the auto-GC threshold; a
        // forced collection must leave a strictly smaller arena when
        // tombstones are present, and account the freed bytes.
        let st_before_gc = s.stats();
        if st_before_gc.arena_wasted_bytes > 0 {
            let freed = s.gc();
            assert!(freed > 0, "gc freed nothing with tombstones present");
        }
        let st = s.stats();
        assert!(
            st.arena_bytes < before,
            "arena did not shrink: {} -> {}",
            before,
            st.arena_bytes
        );
        assert_eq!(st.arena_wasted_bytes, 0);
        assert!(st.gc_runs >= 1);
        assert!(st.gc_freed_bytes > 0);
        // The solver still answers correctly after compaction: v0 is a
        // root fact, so contradicting it is Unsat while anything else is
        // free.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.solve_with(&[!v[1]]), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Unsat);
    }

    #[test]
    fn gc_rewrites_watchers_and_reasons_mid_search() {
        // Force learning + reduction + collection on a pigeonhole, then
        // verify the answer and continued usability.
        let mut s = Solver::new();
        let n = 7;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        // Tiny reduction threshold → many reduce_db (and hence GC) passes.
        s.max_learnts = 20.0;
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
        // The instance is unconditionally UNSAT; the solver noticed.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn reduce_db_keeps_reason_clauses_mid_db() {
        // Regression for the reason-check pathology: build a solver state
        // where learnt clauses sit in the middle of the database and one of
        // them is the reason of a literal on the trail, then force a
        // reduction pass. The locked clause must survive (deleting a
        // reason corrupts conflict analysis — this used to be guarded only
        // via lits[0], which in-place watch swaps can invalidate for
        // root-satisfied clauses).
        let mut s = Solver::new();
        let n = 6;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        // Aggressive reduction: reduce_db runs constantly while reasons
        // from learnt clauses are live on the trail.
        s.max_learnts = 4.0;
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Binary learnts are never deleted by reduction.
        let ca = &s.ca;
        assert!(s.learnts.iter().all(|&r| !ca.is_deleted(r)));
    }

    #[test]
    fn root_satisfied_reason_clauses_are_removable() {
        // A clause that *implied* a level-0 fact stays marked as its reason
        // forever (level-0 assignments are never cancelled). The robust
        // lock check must still allow simplify to drop it once satisfied.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1]]); // will become v1's reason after !v0
        s.add_clause([!v[0]]); // root fact: v0 false → v1 implied with reason
        assert_eq!(s.lit_value(v[1]), LBool::True);
        let reason = s.reason[v[1].var().index()];
        assert_ne!(reason, NO_REASON, "v1 must be implied, not decided");
        // The clause is root-satisfied (by v1) — simplify must remove it.
        let removed = s.simplify();
        assert!(removed >= 1, "root-satisfied reason clause kept");
        // And GC clears the dangling level-0 reason without issue.
        s.gc();
        assert_eq!(s.reason[v[1].var().index()], NO_REASON);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn lbd_is_computed_and_histogrammed() {
        let mut s = Solver::new();
        let n = 6;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        let learnt_total: u64 = st.lbd_hist.iter().sum();
        assert!(learnt_total > 0, "no learnt clauses recorded");
        assert!(st.lbd_sum >= learnt_total, "lbd is at least 1 per clause");
        // Deltas subtract the histogram elementwise.
        let d = st.delta_since(&st);
        assert_eq!(d.lbd_hist.iter().sum::<u64>(), 0);
        assert_eq!(d.lbd_sum, 0);
    }

    #[test]
    fn inprocess_is_idempotent_and_preserves_answers() {
        let mut s = Solver::new();
        let v = vars(&mut s, 8);
        for i in 0..7 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        s.add_clause([v[0]]);
        s.inprocess();
        s.inprocess(); // no new facts: must be a cheap no-op
        assert_eq!(s.solve(), SolveResult::Sat);
        for &l in &v {
            assert_eq!(s.value(l), Some(true));
        }
        s.inprocess();
        assert_eq!(s.solve_with(&[!v[7]]), SolveResult::Unsat);
    }

    fn pigeonhole(s: &mut Solver, n: usize) {
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
    }

    #[test]
    fn seeds_change_search_but_not_answers() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            let mut s = Solver::new();
            s.set_restart_seed(seed);
            s.set_phase_seed(seed);
            pigeonhole(&mut s, 6);
            assert_eq!(s.solve(), SolveResult::Unsat, "seed {seed}");
            // A satisfiable query on a seeded solver.
            let mut s = Solver::new();
            s.set_phase_seed(seed);
            s.set_restart_seed(seed);
            let v = vars(&mut s, 6);
            for w in v.windows(2) {
                s.add_clause([!w[0], w[1]]);
            }
            assert_eq!(s.solve_with(&[v[0]]), SolveResult::Sat, "seed {seed}");
            for &l in &v {
                assert_eq!(s.value(l), Some(true), "seed {seed}");
            }
        }
    }

    #[test]
    fn export_collects_glue_clauses_and_counts() {
        let mut s = Solver::new();
        s.set_share_lbd_max(CORE_LBD);
        pigeonhole(&mut s, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let shared = s.take_shared();
        assert_eq!(shared.len() as u64, s.stats().shared_out);
        assert!(!shared.is_empty(), "a pigeonhole refutation learns glue");
        // Drained: the outbox is empty until new clauses are learnt.
        assert!(s.take_shared().is_empty());
        // Export off by default.
        let mut quiet = Solver::new();
        pigeonhole(&mut quiet, 6);
        assert_eq!(quiet.solve(), SolveResult::Unsat);
        assert_eq!(quiet.stats().shared_out, 0);
        assert!(quiet.take_shared().is_empty());
    }

    #[test]
    fn imported_clauses_are_honoured() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        // Import a binary clause and a unit; both must constrain the search.
        assert!(s.import_clause(&[!v[0], v[1]]));
        assert!(s.import_clause(&[!v[1]]));
        assert_eq!(s.stats().shared_in, 2);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
        // Tautologies and clauses over unknown variables are dropped.
        assert!(s.import_clause(&[v[0], !v[0]]));
        assert!(s.import_clause(&[Lit::from_code(1000)]));
        assert_eq!(s.stats().shared_in, 2);
        // An import contradicting root facts flips the solver to UNSAT.
        assert!(!s.import_clause(&[v[1]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn clause_exchange_between_clones_preserves_verdicts() {
        // Clone a base solver into two "cube workers", let one export under
        // a cube assumption, import into the other, and check both cubes
        // still answer exactly as the monolithic solver does.
        let mut base = Solver::new();
        pigeonhole(&mut base, 5);
        let split = base.new_var().positive();
        let mut mono = base.clone();
        let mut a = base.clone();
        let mut b = base;
        a.set_share_lbd_max(CORE_LBD);
        assert_eq!(a.solve_with(&[split]), SolveResult::Unsat);
        for c in a.take_shared() {
            // `false` is legitimate: an imported glue clause may prove the
            // importer root-unsatisfiable on the spot.
            b.import_clause(&c);
        }
        assert!(b.stats().shared_in > 0 || a.stats().shared_out == 0);
        assert_eq!(b.solve_with(&[!split]), SolveResult::Unsat);
        assert_eq!(mono.solve(), SolveResult::Unsat);
    }

    #[test]
    fn delta_since_covers_share_and_cube_counters() {
        let mut s = Solver::new();
        let before = *s.stats_ref();
        s.set_share_lbd_max(CORE_LBD);
        pigeonhole(&mut s, 6);
        let v = s.new_var().positive();
        s.import_clause(&[v]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.mark_cube_refuted();
        s.mark_cube_refuted();
        let d = s.stats_ref().delta_since(&before);
        assert_eq!(d.shared_out, s.stats_ref().shared_out);
        assert_eq!(d.shared_in, 1);
        assert_eq!(d.cubes_refuted, 2);
        // Self-delta zeroes every counter.
        let z = s.stats_ref().delta_since(s.stats_ref());
        assert_eq!(z.shared_out, 0);
        assert_eq!(z.shared_in, 0);
        assert_eq!(z.cubes_refuted, 0);
    }

    /// Brute-force cross-check on random 3-CNF instances.
    #[test]
    fn random_3cnf_matches_brute_force() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let nv = 3 + (next() % 6) as usize; // 3..8 variables
            let nc = 2 + (next() % 24) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    c.push(((next() % nv as u64) as usize, next() & 1 == 0));
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'assign: for m in 0..(1u32 << nv) {
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'assign;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let v = vars(&mut s, nv);
            for c in &clauses {
                s.add_clause(c.iter().map(|&(i, pos)| if pos { v[i] } else { !v[i] }));
            }
            let got = s.solve();
            assert_eq!(
                got,
                if brute_sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "round {round}"
            );
            if got == SolveResult::Sat {
                // The produced model must satisfy every clause.
                for c in &clauses {
                    assert!(c.iter().any(|&(i, pos)| {
                        s.value(v[i]).unwrap_or(false) == pos || (s.value(v[i]).is_none())
                    }));
                }
            }
        }
    }
}

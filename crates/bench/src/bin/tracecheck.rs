//! Validates a JSONL trace produced by `--trace-out`: every line must parse
//! as a JSON object carrying `ts`, `span`, `ev`, and `fields`; the first
//! line must be the run manifest; `open`/`close` events must pair up with
//! consistent parent links; the last line must be the metrics snapshot.
//!
//! Used by CI to keep the trace schema honest. Exits 0 on a valid trace,
//! 1 (with a diagnostic) otherwise.
//!
//! The validation itself lives in [`diam_trace::Trace::parse`] — this
//! binary is a thin formatter over it. The parser's diagnostics are the
//! strings this tool has always printed, so output stays byte-identical.
//!
//! Usage: `cargo run -p diam-bench --bin tracecheck <trace.jsonl>`

use diam_trace::Trace;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: tracecheck <trace.jsonl>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("tracecheck: cannot read {path}: {e}");
        std::process::exit(1);
    });

    let trace = Trace::parse(&text).unwrap_or_else(|e| {
        eprintln!("tracecheck: line {}: {}", e.line, e.message);
        std::process::exit(1);
    });

    println!(
        "tracecheck: {path}: OK — {} lines, {} spans, {} points, kinds: {}",
        trace.lines,
        trace.span_count(),
        trace.points.len(),
        trace.span_names().join(" ")
    );
}

//! Normalized min-register retiming — the paper's **RET** engine
//! (Section 3.2, Definition 5, Theorem 2).
//!
//! Retiming assigns every vertex a *lag* `r(v)`: the number of registers
//! moved backward through it. The engine minimizes the total register count
//! by solving the Leiserson–Saxe LP exactly (via [`crate::flow`]), then
//! *normalizes* the lags so `max r = 0` — every lag is `≤ 0`.
//!
//! The retimed netlist is the CAV'01 construction the paper builds
//! Theorem 2 on:
//!
//! * a **recurrence structure** with one gate per combinational vertex and
//!   registers re-placed according to the new edge weights
//!   `w_r(e) = w(e) + r(head) − r(tail)`;
//! * a combinational **retiming stump** representing the discarded prefix
//!   time-steps, realized here as [`Init::Fn`] initial-value cones: the
//!   `m`-th register of a chain from source `u` is initialized to the value
//!   the original netlist would have produced for `u` at time `j_u − m`
//!   (`j_v = −r(v)` is the non-negative temporal skew of vertex `v`).
//!   Original input values inside the discarded prefix become fresh *stump
//!   inputs*.
//!
//! The correspondence is `p'(v, t) = p(v, t + j_v)` for every vertex, which
//! is exactly the premise of Theorem 2: a diameter bound `d̂` on a retimed
//! target with lag `r` yields the bound `d̂ + (−r)` on the original target.

use crate::flow::MinCostFlow;
use diam_netlist::{Gate, GateKind, Init, Lit, Netlist};
use std::collections::HashMap;
use std::fmt;

/// Error returned by [`retime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetimeError {
    /// A register's `Init::Fn` cone is not a plain input/constant literal.
    /// Normalize with [`diam_netlist::rebuild::explicit_nondet_init`] and
    /// keep reset logic out of the netlist before retiming.
    ComplexInitCone { reg: Gate },
    /// The retiming LP was infeasible (indicates a malformed netlist).
    Infeasible,
}

impl fmt::Display for RetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimeError::ComplexInitCone { reg } => {
                write!(f, "register {reg} has a non-literal initial-value cone")
            }
            RetimeError::Infeasible => write!(f, "retiming LP infeasible"),
        }
    }
}

impl std::error::Error for RetimeError {}

/// The result of retiming: the new netlist, the per-gate lags, and the
/// old-to-new mapping.
#[derive(Debug, Clone)]
pub struct RetimedNetlist {
    /// The retimed netlist (recurrence structure; the stump lives in the
    /// registers' initial-value cones).
    pub netlist: Netlist,
    /// Normalized lag `r(g) ≤ 0` per original gate.
    pub lag: Vec<i64>,
    /// Old gate → new literal.
    pub map: Vec<Option<Lit>>,
    /// Fresh inputs created for discarded-prefix values of original inputs:
    /// `(original_input, original_time, new_input)`.
    pub stump_inputs: Vec<(Gate, u64, Gate)>,
    /// Registers before and after.
    pub regs_before: usize,
    /// Registers in the retimed netlist.
    pub regs_after: usize,
}

impl RetimedNetlist {
    /// Maps an original literal into the retimed netlist (temporal skew
    /// `−lag` applies; see module docs).
    pub fn lit(&self, old: Lit) -> Option<Lit> {
        self.map[old.gate().index()].map(|l| l.xor_complement(old.is_complement()))
    }

    /// The non-negative temporal skew `j = −r` of an original gate.
    pub fn skew(&self, g: Gate) -> u64 {
        u64::try_from(-self.lag[g.index()]).expect("normalized lag > 0")
    }
}

/// Retimes `n` with a minimum-register normalized retiming.
///
/// # Errors
///
/// Fails with [`RetimeError::ComplexInitCone`] if a register initial value
/// is a function of anything but a single input literal, or
/// [`RetimeError::Infeasible`] if the LP cannot be solved (malformed input).
///
/// # Examples
///
/// ```
/// use diam_netlist::{Init, Netlist};
/// use diam_transform::retime::retime;
///
/// // A 3-deep pipeline: retiming eliminates all registers.
/// let mut n = Netlist::new();
/// let i = n.input("i");
/// let mut prev = i.lit();
/// for k in 0..3 {
///     let r = n.reg(format!("s{k}"), Init::Zero);
///     n.set_next(r, prev);
///     prev = r.lit();
/// }
/// n.add_target(prev, "deep");
/// let ret = retime(&n)?;
/// assert_eq!(ret.regs_after, 0);
/// assert_eq!(ret.skew(prev.gate()), 3);
/// # Ok::<(), diam_transform::retime::RetimeError>(())
/// ```
pub fn retime(n: &Netlist) -> Result<RetimedNetlist, RetimeError> {
    // Observability: the pass framework wraps this engine in the unified
    // `pass.apply` span (see `crate::pass`); no ad-hoc span here.
    // --- validate inits ----------------------------------------------------
    for &r in n.regs() {
        if let Init::Fn(l) = n.reg_init(r) {
            match n.kind(l.gate()) {
                GateKind::Input | GateKind::Const0 => {}
                _ => return Err(RetimeError::ComplexInitCone { reg: r }),
            }
        }
    }

    // --- retiming graph ----------------------------------------------------
    // Vertices are gate indices. Edges: (tail, head, weight).
    let num = n.num_gates();
    let mut edges: Vec<(usize, usize, i64)> = Vec::new();
    for g in n.gates() {
        match n.kind(g) {
            GateKind::And(a, b) => {
                edges.push((a.gate().index(), g.index(), 0));
                edges.push((b.gate().index(), g.index(), 0));
            }
            GateKind::Reg => {
                edges.push((n.reg_next(g).gate().index(), g.index(), 1));
            }
            GateKind::Const0 | GateKind::Input => {}
        }
    }

    // --- solve the LP, one weakly connected component at a time -------------
    // The flow decomposes over weak components of the retiming graph; small
    // independent structures (the common case) solve independently and are
    // normalized per component, which the paper notes can only tighten the
    // per-target lags ("retiming and normalizing a single target cone at a
    // time").
    //
    // Objective coefficients c_v = indeg − outdeg; the flow solver takes
    // supplies as outflow − inflow = −c_v (see crate::flow docs).
    let mut comp_of = vec![usize::MAX; num];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    {
        let mut undirected: Vec<Vec<usize>> = vec![Vec::new(); num];
        for &(u, v, _) in &edges {
            undirected[u].push(v);
            undirected[v].push(u);
        }
        for start in 0..num {
            if comp_of[start] != usize::MAX {
                continue;
            }
            let id = comps.len();
            let mut comp = vec![start];
            comp_of[start] = id;
            let mut head = 0;
            while head < comp.len() {
                let v = comp[head];
                head += 1;
                for &w in &undirected[v] {
                    if comp_of[w] == usize::MAX {
                        comp_of[w] = id;
                        comp.push(w);
                    }
                }
            }
            comps.push(comp);
        }
    }
    let mut lag = vec![0i64; num];
    for (id, comp) in comps.iter().enumerate() {
        if comp.len() <= 1 {
            continue;
        }
        let mut local_of = std::collections::HashMap::new();
        for (i, &v) in comp.iter().enumerate() {
            local_of.insert(v, i);
        }
        let local_edges: Vec<(usize, usize, i64)> = edges
            .iter()
            .filter(|&&(u, _, _)| comp_of[u] == id)
            .map(|&(u, v, w)| (local_of[&u], local_of[&v], w))
            .collect();
        let mut supplies = vec![0i64; comp.len()];
        for &(u, v, _) in &local_edges {
            supplies[v] -= 1;
            supplies[u] += 1;
        }
        let mut net = MinCostFlow::new(comp.len());
        let cap = (local_edges.len() as i64 + n.num_regs() as i64 + 2) * 4;
        for &(u, v, w) in &local_edges {
            net.add_edge(u, v, cap, w);
        }
        net.solve(&supplies).map_err(|_| RetimeError::Infeasible)?;
        let pot = net.valid_potentials();
        // Normalize per component (Definition 5).
        let max_pot = pot.iter().copied().map(|p| -p).max().unwrap_or(0);
        for (i, &v) in comp.iter().enumerate() {
            lag[v] = -pot[i] - max_pot;
        }
    }
    // Feasibility sanity check.
    for &(u, v, w) in &edges {
        debug_assert!(lag[u] - lag[v] <= w, "retiming constraint violated");
    }
    let skew = |g: Gate| -> u64 { (-lag[g.index()]) as u64 };

    // --- build the retimed netlist -------------------------------------------
    let mut out = Netlist::new();
    let mut map: Vec<Option<Lit>> = vec![None; num];
    map[Gate::CONST0.index()] = Some(Lit::FALSE);
    for &i in n.inputs() {
        let g = out.input(n.name(i).unwrap_or("in").to_string());
        map[i.index()] = Some(g.lit());
    }

    // Topological order over edges whose *new* weight is zero.
    let new_weight = |(u, v, w): (usize, usize, i64)| -> i64 { w + lag[v] - lag[u] };
    let mut indeg0 = vec![0usize; num];
    let mut succs0: Vec<Vec<usize>> = vec![Vec::new(); num];
    for &e in &edges {
        if new_weight(e) == 0 {
            let (u, v, _) = e;
            indeg0[v] += 1;
            succs0[u].push(v);
        }
    }
    let mut order: Vec<usize> = (0..num).filter(|&v| indeg0[v] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &w in &succs0[v] {
            indeg0[w] -= 1;
            if indeg0[w] == 0 {
                order.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), num, "zero-weight retimed edges form a cycle");

    // Register chains per source vertex: chains[src] = registers delaying
    // the plain value of src by 1, 2, … (created on demand, next-functions
    // connected at the end).
    let mut chains: Vec<Vec<Gate>> = vec![Vec::new(); num];
    let mut stump = Stump {
        n,
        lag: &lag,
        memo: HashMap::new(),
        stump_inputs: Vec::new(),
        pending_next: Vec::new(),
    };

    // Delayed view of vertex `src` by `k` cycles (plain value).
    // Creates chain registers with stump initial values as needed.
    fn delayed(
        out: &mut Netlist,
        n: &Netlist,
        stump: &mut Stump<'_>,
        chains: &mut [Vec<Gate>],
        map: &[Option<Lit>],
        src: usize,
        k: u64,
    ) -> Lit {
        if src == Gate::CONST0.index() {
            return Lit::FALSE;
        }
        if k == 0 {
            return map[src].expect("source built before consumer");
        }
        let j_src = stump.skew(Gate::from_index(src));
        debug_assert!(k <= j_src, "shared chains only cover the stump range");
        while (chains[src].len() as u64) < k {
            let m = chains[src].len() as u64 + 1;
            let name = format!("{}_d{m}", n.name(Gate::from_index(src)).unwrap_or("v"));
            let init_lit = stump.value(out, Gate::from_index(src), j_src - m);
            let reg = out.reg(name, Init::Fn(init_lit));
            chains[src].push(reg);
        }
        chains[src][(k - 1) as usize].lit()
    }

    for &v in &order {
        let g = Gate::from_index(v);
        match n.kind(g) {
            GateKind::Const0 | GateKind::Input => {} // already mapped
            GateKind::And(a, b) => {
                let ja = skew(a.gate());
                let jb = skew(b.gate());
                let jv = skew(g);
                let la = delayed(
                    &mut out,
                    n,
                    &mut stump,
                    &mut chains,
                    &map,
                    a.gate().index(),
                    ja - jv,
                )
                .xor_complement(a.is_complement());
                let lb = delayed(
                    &mut out,
                    n,
                    &mut stump,
                    &mut chains,
                    &map,
                    b.gate().index(),
                    jb - jv,
                )
                .xor_complement(b.is_complement());
                map[v] = Some(out.and(la, lb));
            }
            GateKind::Reg => {
                let next = n.reg_next(g);
                let u = next.gate();
                let k = 1 + skew(u) as i64 - skew(g) as i64;
                debug_assert!(k >= 0);
                let k = k as u64;
                if k == 0 {
                    // Register eliminated: becomes a wire from its driver.
                    let src = delayed(&mut out, n, &mut stump, &mut chains, &map, u.index(), 0);
                    map[v] = Some(src.xor_complement(next.is_complement()));
                    continue;
                }
                let plain = if k <= skew(u) {
                    delayed(&mut out, n, &mut stump, &mut chains, &map, u.index(), k)
                } else {
                    // k = j_u + 1: one extra register beyond the shared
                    // chain, initialized from the original register's own
                    // initial value (complement-adjusted below).
                    debug_assert_eq!(k, skew(u) + 1);
                    let feeder = if skew(u) == 0 {
                        None // connected to map[u] at the end
                    } else {
                        Some(delayed(
                            &mut out,
                            n,
                            &mut stump,
                            &mut chains,
                            &map,
                            u.index(),
                            skew(u),
                        ))
                    };
                    let init = adjust_init(&mut stump, &mut out, g, next.is_complement());
                    let reg = out.reg(n.name(g).unwrap_or("reg").to_string(), init);
                    // The extra register's next is the (j_u)-delayed plain
                    // value of u — record for the connection pass.
                    stump.pending_next.push((reg, u.index(), feeder));
                    reg.lit()
                };
                map[v] = Some(plain.xor_complement(next.is_complement()));
            }
        }
    }

    // Connect chain register next-functions (they may reference gates built
    // later in `order`, so this happens after the main pass).
    for src in 0..num {
        for (m, &reg) in chains[src].iter().enumerate() {
            let next = if m == 0 {
                map[src].expect("chain source mapped")
            } else {
                chains[src][m - 1].lit()
            };
            out.set_next(reg, next);
        }
    }
    for &(reg, u, feeder) in &stump.pending_next {
        let next = match feeder {
            Some(l) => l,
            None => map[u].expect("extra-register driver mapped"),
        };
        out.set_next(reg, next);
    }

    // Targets.
    for t in n.targets() {
        let l = map[t.lit.gate().index()]
            .expect("target vertex mapped")
            .xor_complement(t.lit.is_complement());
        out.add_target(l, t.name.clone());
    }

    let regs_after = out.num_regs();
    let stump_inputs = std::mem::take(&mut stump.stump_inputs);
    drop(stump);
    Ok(RetimedNetlist {
        netlist: out,
        lag,
        map,
        stump_inputs,
        regs_before: n.num_regs(),
        regs_after,
    })
}

/// The initial value of the dedicated extra register standing in for the
/// original register `orig_reg`, complement-adjusted when the original
/// next-state literal was inverted. Nondeterministic and functional initial
/// values are routed through the stump so they bind to the same fresh
/// inputs everywhere.
fn adjust_init(stump: &mut Stump<'_>, out: &mut Netlist, orig_reg: Gate, complement: bool) -> Init {
    let translated = match stump.n.reg_init(orig_reg) {
        Init::Zero => Init::Zero,
        Init::One => Init::One,
        Init::Nondet | Init::Fn(_) => {
            // `S(R, 0)` is exactly the original initial value, memoized —
            // shared with any other stump use of the same register.
            Init::Fn(stump.value(out, orig_reg, 0))
        }
    };
    if complement {
        translated.complement()
    } else {
        translated
    }
}

/// Builder state for the retiming stump: memoized values `S(g, τ)` = the
/// original value of gate `g` at original time `τ` (`τ ≤ j_g`), expressed
/// as a literal of the new netlist over time-0 inputs and fresh stump
/// inputs.
struct Stump<'a> {
    n: &'a Netlist,
    lag: &'a [i64],
    memo: HashMap<(Gate, u64), Lit>,
    stump_inputs: Vec<(Gate, u64, Gate)>,
    pending_next: Vec<(Gate, usize, Option<Lit>)>,
}

impl<'a> Stump<'a> {
    fn skew(&self, g: Gate) -> u64 {
        (-self.lag[g.index()]) as u64
    }

    /// `S(g, τ)` — see struct docs. `τ ≤ j_g` is guaranteed by the lag
    /// constraints (checked with a debug assertion).
    fn value(&mut self, out: &mut Netlist, g: Gate, tau: u64) -> Lit {
        debug_assert!(
            tau <= self.skew(g),
            "stump query beyond skew: {g} at {tau} (skew {})",
            self.skew(g)
        );
        if let Some(&l) = self.memo.get(&(g, tau)) {
            return l;
        }
        let result = match self.n.kind(g) {
            GateKind::Const0 => Lit::FALSE,
            GateKind::Input => {
                let j = self.skew(g);
                if tau == j {
                    // The new input stream starts at original time j.
                    // Referencing it at time 0 is exactly p(g, j).
                    // The caller guarantees map[g] exists — inputs are
                    // created first — but the stump cannot see `map`;
                    // inputs are created with identical order, so find by
                    // position.
                    let pos = self
                        .n
                        .inputs()
                        .iter()
                        .position(|&i| i == g)
                        .expect("input exists");
                    out.inputs()[pos].lit()
                } else {
                    // Discarded prefix: fresh stump input.
                    let name = format!("{}@{tau}", self.n.name(g).unwrap_or("in"));
                    let ni = out.input(name);
                    self.stump_inputs.push((g, tau, ni));
                    ni.lit()
                }
            }
            GateKind::And(a, b) => {
                let la = self
                    .value(out, a.gate(), tau)
                    .xor_complement(a.is_complement());
                let lb = self
                    .value(out, b.gate(), tau)
                    .xor_complement(b.is_complement());
                out.and(la, lb)
            }
            GateKind::Reg => {
                if tau >= 1 {
                    let next = self.n.reg_next(g);
                    self.value(out, next.gate(), tau - 1)
                        .xor_complement(next.is_complement())
                } else {
                    match self.n.reg_init(g) {
                        Init::Zero => Lit::FALSE,
                        Init::One => Lit::TRUE,
                        Init::Nondet => {
                            let name = format!("{}@init", self.n.name(g).unwrap_or("reg"));
                            let ni = out.input(name);
                            self.stump_inputs.push((g, 0, ni));
                            ni.lit()
                        }
                        Init::Fn(l) => self
                            .value(out, l.gate(), 0)
                            .xor_complement(l.is_complement()),
                    }
                }
            }
        };
        self.memo.insert((g, tau), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diam_netlist::sim::{simulate, SplitMix64, Stimulus};

    /// Checks the retiming correspondence `p'(v, t) = p(v, t + j_v)` by
    /// co-simulation: the retimed netlist is driven with the original input
    /// streams advanced by each input's skew, and stump inputs receive the
    /// discarded prefix values.
    fn check_correspondence(n: &Netlist, ret: &RetimedNetlist, steps: usize, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let mut stim = Stimulus::random(n, steps, &mut rng);
        for w in &mut stim.nondet_init {
            *w = rng.next_u64();
        }
        let trace = simulate(n, &stim);

        // Build the retimed stimulus.
        let m = &ret.netlist;
        let max_skew = n.gates().map(|g| ret.skew(g)).max().unwrap_or(0) as usize;
        assert!(steps > max_skew, "simulate longer than the max skew");
        let horizon = steps - max_skew;
        let mut inputs = vec![vec![0u64; m.num_inputs()]; horizon];
        // Original inputs occupy the first positions, in order.
        for (pos, &i) in n.inputs().iter().enumerate() {
            let j = ret.skew(i) as usize;
            for (t, row) in inputs.iter_mut().enumerate() {
                row[pos] = stim.inputs[t + j][n.inputs().iter().position(|&x| x == i).unwrap()];
            }
        }
        // Stump inputs: original value of (gate, tau).
        for &(orig, tau, new_input) in &ret.stump_inputs {
            let pos = m
                .inputs()
                .iter()
                .position(|&x| x == new_input)
                .expect("stump input exists");
            let word = match n.kind(orig) {
                GateKind::Input => trace.word(orig.lit(), tau as usize),
                GateKind::Reg => {
                    // Nondet initial value of the original register.
                    let rpos = n.regs().iter().position(|&r| r == orig).unwrap();
                    stim.nondet_init[rpos]
                }
                _ => unreachable!("stump inputs come from inputs or nondet inits"),
            };
            for row in inputs.iter_mut() {
                row[pos] = word;
            }
        }
        let rstim = Stimulus {
            inputs,
            nondet_init: vec![0; m.num_regs()],
        };
        let rtrace = simulate(m, &rstim);

        for g in n.gates() {
            let Some(new_lit) = ret.lit(g.lit()) else {
                continue;
            };
            let j = ret.skew(g) as usize;
            for t in 0..horizon {
                assert_eq!(
                    rtrace.word(new_lit, t),
                    trace.word(g.lit(), t + j),
                    "gate {g} (skew {j}) diverges at retimed time {t}"
                );
            }
        }
    }

    #[test]
    fn pipeline_registers_are_eliminated() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let mut prev = i.lit();
        let mut regs = Vec::new();
        for k in 0..4 {
            let r = n.reg(format!("s{k}"), Init::Zero);
            n.set_next(r, prev);
            prev = r.lit();
            regs.push(r);
        }
        n.add_target(prev, "deep");
        let ret = retime(&n).unwrap();
        assert_eq!(ret.regs_after, 0);
        assert_eq!(ret.skew(regs[3]), 4);
        ret.netlist.validate().unwrap();
        check_correspondence(&n, &ret, 16, 11);
    }

    #[test]
    fn toggle_register_is_preserved() {
        let mut n = Netlist::new();
        let r = n.reg("t", Init::Zero);
        n.set_next(r, !r.lit());
        n.add_target(r.lit(), "high");
        let ret = retime(&n).unwrap();
        assert_eq!(ret.regs_after, 1);
        ret.netlist.validate().unwrap();
        check_correspondence(&n, &ret, 8, 3);
    }

    #[test]
    fn lags_are_normalized_nonpositive() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let r1 = n.reg("r1", Init::One);
        let r2 = n.reg("r2", Init::Nondet);
        n.set_next(r1, a.lit());
        let x = n.xor(r1.lit(), a.lit());
        n.set_next(r2, x);
        n.add_target(r2.lit(), "t");
        let ret = retime(&n).unwrap();
        assert!(ret.lag.iter().all(|&l| l <= 0));
        assert!(ret.lag.contains(&0));
        check_correspondence(&n, &ret, 12, 5);
    }

    #[test]
    fn fanout_from_pipeline_middle() {
        // r0 feeds both r1 and combinational logic observed by the target.
        let mut n = Netlist::new();
        let i = n.input("i");
        let j = n.input("j");
        let r0 = n.reg("r0", Init::Zero);
        let r1 = n.reg("r1", Init::One);
        n.set_next(r0, i.lit());
        n.set_next(r1, r0.lit());
        let t = n.mux(j.lit(), r0.lit(), r1.lit());
        n.add_target(t, "t");
        let ret = retime(&n).unwrap();
        ret.netlist.validate().unwrap();
        assert!(ret.regs_after <= 2);
        check_correspondence(&n, &ret, 12, 7);
    }

    #[test]
    fn self_loop_with_enable() {
        // A held register: next = mux(en, data, self).
        let mut n = Netlist::new();
        let en = n.input("en");
        let d = n.input("d");
        let r = n.reg("hold", Init::Nondet);
        let nx = n.mux(en.lit(), d.lit(), r.lit());
        n.set_next(r, nx);
        n.add_target(r.lit(), "t");
        let ret = retime(&n).unwrap();
        assert_eq!(ret.regs_after, 1);
        check_correspondence(&n, &ret, 10, 13);
    }

    #[test]
    fn fn_init_input_literal_is_supported() {
        let mut n = Netlist::new();
        let iv = n.input("iv");
        let i = n.input("i");
        let r = n.reg("r", Init::Fn(!iv.lit()));
        n.set_next(r, i.lit());
        n.add_target(r.lit(), "t");
        let ret = retime(&n).unwrap();
        ret.netlist.validate().unwrap();
        check_correspondence(&n, &ret, 10, 17);
    }

    #[test]
    fn complex_init_cone_is_rejected() {
        let mut n = Netlist::new();
        let a = n.input("a");
        let b = n.input("b");
        let cone = n.and(a.lit(), b.lit());
        let r = n.reg("r", Init::Fn(cone));
        n.set_next(r, a.lit());
        n.add_target(r.lit(), "t");
        assert!(matches!(
            retime(&n),
            Err(RetimeError::ComplexInitCone { .. })
        ));
    }

    #[test]
    fn random_netlists_preserve_correspondence() {
        let mut rng = SplitMix64::new(0xfeed);
        for round in 0..20 {
            let mut n = Netlist::new();
            let inputs: Vec<Lit> = (0..3).map(|k| n.input(format!("i{k}")).lit()).collect();
            let mut regs = Vec::new();
            let mut pool: Vec<Lit> = inputs.clone();
            for k in 0..4 {
                let init = match rng.below(3) {
                    0 => Init::Zero,
                    1 => Init::One,
                    _ => Init::Nondet,
                };
                let r = n.reg(format!("r{k}"), init);
                regs.push(r);
                pool.push(r.lit());
            }
            for _ in 0..10 {
                let a = pool[rng.below(pool.len() as u64) as usize];
                let b = pool[rng.below(pool.len() as u64) as usize];
                let l = match rng.below(3) {
                    0 => n.and(a, b),
                    1 => n.or(a, b),
                    _ => n.xor(a, b),
                };
                pool.push(l);
            }
            for &r in &regs {
                let nx = pool[rng.below(pool.len() as u64) as usize];
                n.set_next(r, nx);
            }
            let t = *pool.last().unwrap();
            n.add_target(t, "t");
            let ret = match retime(&n) {
                Ok(r) => r,
                Err(e) => panic!("round {round}: {e}"),
            };
            ret.netlist.validate().unwrap();
            assert!(ret.regs_after <= ret.regs_before);
            check_correspondence(&n, &ret, 20, 0x100 + round);
        }
    }
}

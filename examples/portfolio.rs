//! The whole system on one realistic design: a small DMA-descriptor engine
//! built with the word-level helpers, checked end-to-end by the portfolio
//! strategy (random simulation → redundancy removal → diameter-complete
//! BMC → strengthened induction).
//!
//! Run with: `cargo run --release --example portfolio`

use diam::bmc::strategy::{solve_all, StrategyOptions, TargetStatus};
use diam::netlist::word::{mod_counter, RegWord, Word};
use diam::netlist::{Init, Netlist};

fn main() {
    let mut n = Netlist::new();

    // A descriptor queue index: wraps modulo 6 (three in-flight slots × 2
    // banks), advancing on `grant`.
    let grant = n.input("grant").lit();
    let head = mod_counter(&mut n, "head", 3, 6, grant);

    // The currently latched descriptor length: loaded on grant from the bus.
    let bus = Word::inputs(&mut n, "bus", 4);
    let len = RegWord::new(&mut n, "len", 4, Init::Zero);
    let next_len = bus.mux(&mut n, grant, &len.value);
    len.set_next(&mut n, &next_len);

    // Remaining-beat down-counter: reloads with `len` on grant, else
    // decrements toward zero (saturating via `busy`).
    let beats = RegWord::new(&mut n, "beats", 4, Init::Zero);
    let busy = beats.value.any(&mut n);
    let one = Word::constant(1, 4);
    let ones = one.not();
    let (dec, _) = beats.value.add(&mut n, &ones, diam::netlist::Lit::FALSE); // beats − 1
    let dec_or_hold = dec.mux(&mut n, busy, &beats.value);
    let next_beats = bus.mux(&mut n, grant, &dec_or_hold);
    beats.set_next(&mut n, &next_beats);

    // A shadow copy of the beat counter, mux-structured (checker logic).
    let shadow = RegWord::new(&mut n, "shadow", 4, Init::Zero);
    let sh_busy = shadow.value.any(&mut n);
    let (sh_dec, _) = shadow.value.add(&mut n, &ones, diam::netlist::Lit::FALSE);
    let sh_hold = sh_dec.mux(&mut n, sh_busy, &shadow.value);
    let sh_next = bus.mux(&mut n, grant, &sh_hold);
    shadow.set_next(&mut n, &sh_next);

    // Properties:
    // 0. the head index never reaches 6 or 7 (mod-6 invariant);
    let head_ge_6 = {
        let b1 = head.value.bit(1);
        let b2 = head.value.bit(2);
        n.and(b2, b1)
    };
    n.add_target(head_ge_6, "head_overflows");
    // 1. shadow and main beat counters agree;
    let diff = beats.value.xor(&mut n, &shadow.value);
    let mismatch = diff.any(&mut n);
    n.add_target(mismatch, "shadow_mismatch");
    // 2. the engine can actually start a burst (expected reachable).
    n.add_target(busy, "burst_active");

    println!(
        "DMA engine: {} inputs, {} registers, {} ANDs, {} targets\n",
        n.num_inputs(),
        n.num_regs(),
        n.num_ands(),
        n.targets().len()
    );

    let statuses = solve_all(&n, &StrategyOptions::default());
    for (t, status) in n.targets().iter().zip(&statuses) {
        match status {
            TargetStatus::Proved { by } => println!("PROVED {:<18} by {by}", t.name),
            TargetStatus::Failed { depth, by, .. } => {
                println!("FAILS  {:<18} at time {depth} (found by {by})", t.name)
            }
            TargetStatus::Open { bound } => {
                println!("OPEN   {:<18} (bound {bound:?})", t.name)
            }
        }
    }
}

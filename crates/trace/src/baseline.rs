//! The schema-versioned `BENCH_<label>.json` baseline format.
//!
//! The `benchreport` harness (`crates/bench`) runs a suite N times under
//! `--obs json`, parses each run with [`Trace::parse`], and folds the runs
//! into one [`Baseline`]: per-phase **median** totals (medians resist the
//! one slow outlier run that means nothing), total SAT work, peak RSS, and
//! per-depth SAT quantile rows. The file carries a `schema_version` so a
//! future format change fails loudly instead of mis-diffing, and a
//! manifest **fingerprint** (FNV-1a over tool + input + non-observability
//! options) so two baselines are only ever compared when they measured the
//! same workload.

use crate::analyze::{rollup, sat_depth_table, DepthRow};
use crate::model::{SatAttr, Trace};
use diam_obs::json::{self, JsonValue};
use std::collections::{BTreeMap, BTreeSet};

/// Version of the `BENCH_*.json` schema written by [`Baseline::to_json`].
pub const SCHEMA_VERSION: u64 = 1;

/// Option keys that describe *how we observed* the run rather than *what
/// ran*; they are excluded from the fingerprint so `--obs json --trace-out
/// foo` baselines stay comparable across observability settings.
const FINGERPRINT_EXCLUDED_OPTIONS: &[&str] = &["obs", "trace_out", "trace-out"];

/// Median phase statistics across the baseline's runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePhase {
    /// Span name.
    pub name: String,
    /// Median span count per run.
    pub count: u64,
    /// Median total time per run.
    pub total_ns: u64,
    /// Median self time per run.
    pub self_ns: u64,
}

/// An aggregated benchmark baseline, serializable as `BENCH_<label>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Human label, e.g. `seed`.
    pub label: String,
    /// Tool that produced the traces (e.g. `table1`).
    pub tool: String,
    /// Build fingerprint string from the manifest.
    pub build: String,
    /// Creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// Workload fingerprint (see [`fingerprint`]).
    pub fingerprint: String,
    /// Number of runs aggregated.
    pub runs: u64,
    /// Median wall time across runs.
    pub wall_ns: u64,
    /// Maximum peak RSS across runs; `None` when no run reported it.
    pub peak_rss_kb: Option<u64>,
    /// Median total SAT work across runs.
    pub sat: SatAttr,
    /// Per-phase medians, sorted by `total_ns` descending.
    pub phases: Vec<BaselinePhase>,
    /// Per-depth SAT rows from the **first** run (quantiles are bucket
    /// bounds already; medianizing them would double-estimate).
    pub sat_depths: Vec<DepthRow>,
}

/// FNV-1a (64-bit) over the manifest's tool, input, and options — skipping
/// observability-only keys. Hex-encoded.
pub fn fingerprint(trace: &Trace) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f; // field separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(trace.manifest.tool.as_bytes());
    eat(trace.manifest.input.as_deref().unwrap_or("").as_bytes());
    for (k, v) in &trace.manifest.options {
        if FINGERPRINT_EXCLUDED_OPTIONS.contains(&k.as_str()) {
            continue;
        }
        eat(k.as_bytes());
        eat(v.as_bytes());
    }
    format!("{h:016x}")
}

/// Lower median of a slice (deterministic; no averaging of integers).
fn median(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

impl Baseline {
    /// Aggregates N single-run traces into a baseline.
    ///
    /// # Errors
    ///
    /// Fails when `traces` is empty or the runs have mismatched workload
    /// fingerprints (they must all measure the same thing).
    pub fn from_traces(label: &str, traces: &[Trace]) -> Result<Baseline, String> {
        let Some(first) = traces.first() else {
            return Err("no traces to aggregate".into());
        };
        let fp = fingerprint(first);
        for (i, t) in traces.iter().enumerate() {
            let tfp = fingerprint(t);
            if tfp != fp {
                return Err(format!(
                    "run {} has fingerprint {tfp} but run 0 has {fp}; all runs must measure the same workload",
                    i
                ));
            }
        }

        let rollups: Vec<_> = traces.iter().map(rollup).collect();
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for r in &rollups {
            for p in r {
                names.insert(&p.name);
            }
        }
        let mut phases = Vec::new();
        for name in names {
            let mut counts = Vec::new();
            let mut totals = Vec::new();
            let mut selfs = Vec::new();
            for r in &rollups {
                let p = r.iter().find(|p| p.name == name);
                counts.push(p.map_or(0, |p| p.count));
                totals.push(p.map_or(0, |p| p.total_ns));
                selfs.push(p.map_or(0, |p| p.self_ns));
            }
            phases.push(BaselinePhase {
                name: name.to_string(),
                count: median(&mut counts),
                total_ns: median(&mut totals),
                self_ns: median(&mut selfs),
            });
        }
        phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

        // Total SAT work per run = sum over root spans (root close fields
        // already include everything charged beneath them).
        let total_sat = |t: &Trace| {
            let mut sat = SatAttr::default();
            for id in t.roots() {
                sat.add(&t.spans[&id].sat);
            }
            sat
        };
        let mut solves: Vec<u64> = traces.iter().map(|t| total_sat(t).solves).collect();
        let mut conflicts: Vec<u64> = traces.iter().map(|t| total_sat(t).conflicts).collect();
        let mut decisions: Vec<u64> = traces.iter().map(|t| total_sat(t).decisions).collect();
        let mut props: Vec<u64> = traces.iter().map(|t| total_sat(t).propagations).collect();
        let mut walls: Vec<u64> = traces.iter().map(|t| t.manifest.wall_ns).collect();

        Ok(Baseline {
            schema_version: SCHEMA_VERSION,
            label: label.to_string(),
            tool: first.manifest.tool.clone(),
            build: first.manifest.build.clone(),
            created_unix_ms: first.manifest.started_unix_ms,
            fingerprint: fp,
            runs: traces.len() as u64,
            wall_ns: median(&mut walls),
            peak_rss_kb: traces.iter().filter_map(|t| t.manifest.peak_rss_kb).max(),
            sat: SatAttr {
                solves: median(&mut solves),
                conflicts: median(&mut conflicts),
                decisions: median(&mut decisions),
                propagations: median(&mut props),
                // GC work is run-local maintenance, not part of the pinned
                // baseline schema (BENCH_seed.json predates it).
                ..SatAttr::default()
            },
            phases,
            sat_depths: sat_depth_table(first),
        })
    }

    /// Serializes to pretty-printed JSON (the `BENCH_<label>.json` format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str("  \"label\": ");
        json::write_escaped(&mut out, &self.label);
        out.push_str(",\n  \"tool\": ");
        json::write_escaped(&mut out, &self.tool);
        out.push_str(",\n  \"build\": ");
        json::write_escaped(&mut out, &self.build);
        out.push_str(&format!(
            ",\n  \"created_unix_ms\": {},\n  \"fingerprint\": \"{}\",\n  \"runs\": {},\n  \"wall_ns\": {},\n",
            self.created_unix_ms, self.fingerprint, self.runs, self.wall_ns
        ));
        if let Some(kb) = self.peak_rss_kb {
            out.push_str(&format!("  \"peak_rss_kb\": {kb},\n"));
        }
        out.push_str(&format!(
            "  \"sat\": {{\"solves\": {}, \"conflicts\": {}, \"decisions\": {}, \"propagations\": {}}},\n",
            self.sat.solves, self.sat.conflicts, self.sat.decisions, self.sat.propagations
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str("    {\"name\": ");
            json::write_escaped(&mut out, &p.name);
            out.push_str(&format!(
                ", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}{}\n",
                p.count,
                p.total_ns,
                p.self_ns,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"sat_depths\": [\n");
        for (i, d) in self.sat_depths.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"depth\": {}, \"solves\": {}, \"conflicts\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{}\n",
                d.depth,
                d.solves,
                d.conflicts,
                d.p50,
                d.p90,
                d.p99,
                if i + 1 < self.sat_depths.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a `BENCH_*.json` file.
    ///
    /// # Errors
    ///
    /// Fails on invalid JSON, a missing/foreign `schema_version`, or missing
    /// required keys.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = json::parse(text).map_err(|e| format!("invalid baseline JSON: {e}"))?;
        let obj = match &v {
            JsonValue::Object(m) => m,
            _ => return Err("baseline is not a JSON object".into()),
        };
        let schema_version = get_u64(obj, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "baseline schema version {schema_version} unsupported (this build reads {SCHEMA_VERSION})"
            ));
        }
        let phases = match obj.get("phases") {
            Some(JsonValue::Array(a)) => a
                .iter()
                .map(|p| {
                    let m = match p {
                        JsonValue::Object(m) => m,
                        _ => return Err("phase entry is not an object".to_string()),
                    };
                    Ok(BaselinePhase {
                        name: get_str(m, "name")?,
                        count: get_u64(m, "count")?,
                        total_ns: get_u64(m, "total_ns")?,
                        self_ns: get_u64(m, "self_ns")?,
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `phases` array".into()),
        };
        let sat_depths = match obj.get("sat_depths") {
            Some(JsonValue::Array(a)) => a
                .iter()
                .map(|p| {
                    let m = match p {
                        JsonValue::Object(m) => m,
                        _ => return Err("sat_depths entry is not an object".to_string()),
                    };
                    Ok(DepthRow {
                        depth: get_u64(m, "depth")?,
                        solves: get_u64(m, "solves")?,
                        conflicts: get_u64(m, "conflicts")?,
                        p50: get_u64(m, "p50")?,
                        p90: get_u64(m, "p90")?,
                        p99: get_u64(m, "p99")?,
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        let sat = match obj.get("sat") {
            Some(JsonValue::Object(m)) => SatAttr {
                solves: get_u64(m, "solves")?,
                conflicts: get_u64(m, "conflicts")?,
                decisions: get_u64(m, "decisions")?,
                propagations: get_u64(m, "propagations")?,
                ..SatAttr::default()
            },
            _ => SatAttr::default(),
        };
        Ok(Baseline {
            schema_version,
            label: get_str(obj, "label")?,
            tool: get_str(obj, "tool")?,
            build: get_str(obj, "build")?,
            created_unix_ms: get_u64(obj, "created_unix_ms")?,
            fingerprint: get_str(obj, "fingerprint")?,
            runs: get_u64(obj, "runs")?,
            wall_ns: get_u64(obj, "wall_ns")?,
            peak_rss_kb: obj.get("peak_rss_kb").and_then(|v| v.as_u64()),
            sat,
            phases,
            sat_depths,
        })
    }
}

fn get_u64(m: &BTreeMap<String, JsonValue>, k: &str) -> Result<u64, String> {
    m.get(k)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing or non-integer `{k}`"))
}

fn get_str(m: &BTreeMap<String, JsonValue>, k: &str) -> Result<String, String> {
    m.get(k)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{k}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_trace(wall: u64, slow_ns: u64, rss: Option<u64>) -> Trace {
        let rss_field = match rss {
            Some(kb) => format!(",\"peak_rss_kb\":{kb}"),
            None => String::new(),
        };
        let text = format!(
            concat!(
                "{{\"ts\":0,\"span\":0,\"ev\":\"manifest\",\"fields\":{{\"tool\":\"table1\",\"args\":[\"7\"],\"input\":\"suite\",\"options\":{{\"jobs\":\"seq\",\"obs\":\"json\"}},\"build\":\"dev\",\"started_unix_ms\":5,\"wall_ns\":{wall}{rss}}}}}\n",
                "{{\"ts\":0,\"seq\":0,\"worker\":0,\"ev\":\"open\",\"span\":1,\"parent\":0,\"name\":\"pipeline.run\",\"fields\":{{}}}}\n",
                "{{\"ts\":1,\"seq\":1,\"worker\":0,\"ev\":\"open\",\"span\":2,\"parent\":1,\"name\":\"bmc.check\",\"fields\":{{}}}}\n",
                "{{\"ts\":2,\"seq\":2,\"worker\":0,\"ev\":\"point\",\"span\":2,\"name\":\"sat.solve\",\"fields\":{{\"depth\":1,\"conflicts\":9}}}}\n",
                "{{\"ts\":3,\"seq\":3,\"worker\":0,\"ev\":\"close\",\"span\":2,\"dur_ns\":{slow},\"name\":\"bmc.check\",\"fields\":{{\"sat_solves\":1,\"sat_conflicts\":9,\"sat_decisions\":2,\"sat_propagations\":30}}}}\n",
                "{{\"ts\":4,\"seq\":4,\"worker\":0,\"ev\":\"close\",\"span\":1,\"dur_ns\":{wall},\"name\":\"pipeline.run\",\"fields\":{{\"sat_solves\":1,\"sat_conflicts\":9,\"sat_decisions\":2,\"sat_propagations\":30}}}}\n",
                "{{\"ts\":{wall},\"span\":0,\"ev\":\"metrics\",\"fields\":{{}}}}\n",
            ),
            wall = wall,
            rss = rss_field,
            slow = slow_ns,
        );
        Trace::parse(&text).expect("valid run trace")
    }

    #[test]
    fn medians_and_rss_aggregate_across_runs() {
        let traces = vec![
            run_trace(300, 200, Some(1000)),
            run_trace(100, 50, None),
            run_trace(200, 120, Some(4000)),
        ];
        let b = Baseline::from_traces("seed", &traces).expect("aggregates");
        assert_eq!(b.runs, 3);
        assert_eq!(b.wall_ns, 200); // median of 100/200/300
        assert_eq!(b.peak_rss_kb, Some(4000)); // max of known values
        assert_eq!(b.sat.solves, 1);
        let bmc = b.phases.iter().find(|p| p.name == "bmc.check").unwrap();
        assert_eq!(bmc.total_ns, 120); // median of 50/120/200
        assert_eq!(b.sat_depths.len(), 1);
        assert_eq!(b.sat_depths[0].p50, 15); // 9 → 4-bit bucket bound
    }

    #[test]
    fn json_round_trips() {
        let traces = vec![run_trace(300, 200, Some(1000)), run_trace(100, 50, None)];
        let b1 = Baseline::from_traces("seed", &traces).expect("aggregates");
        let b2 = Baseline::parse(&b1.to_json()).expect("parses back");
        assert_eq!(b1, b2);
    }

    #[test]
    fn peak_rss_key_is_absent_when_unknown() {
        let traces = vec![run_trace(100, 50, None)];
        let b = Baseline::from_traces("seed", &traces).expect("aggregates");
        assert_eq!(b.peak_rss_kb, None);
        assert!(!b.to_json().contains("peak_rss_kb"));
    }

    #[test]
    fn fingerprint_ignores_observability_options_only() {
        let a = run_trace(100, 50, None);
        let mut b = a.clone();
        b.manifest.options.insert("obs".into(), "summary".into());
        b.manifest
            .options
            .insert("trace_out".into(), "/tmp/x.jsonl".into());
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let mut c = a.clone();
        c.manifest.options.insert("jobs".into(), "4".into());
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let traces = vec![run_trace(100, 50, None)];
        let b = Baseline::from_traces("seed", &traces).expect("aggregates");
        let bad = b.to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        let err = Baseline::parse(&bad).expect_err("must reject");
        assert!(err.contains("schema version 999"), "{err}");
    }

    #[test]
    fn mismatched_fingerprints_refuse_to_aggregate() {
        let a = run_trace(100, 50, None);
        let mut b = run_trace(100, 50, None);
        b.manifest.options.insert("limit".into(), "2".into());
        let err = Baseline::from_traces("seed", &[a, b]).expect_err("must refuse");
        assert!(err.contains("fingerprint"), "{err}");
    }
}

//! Netlist statistics: size, depth, and fanout summaries for reports and
//! the command-line front end.

use crate::{analysis, GateKind, Init, Netlist};

/// Aggregate structural statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Registers.
    pub regs: usize,
    /// AND gates.
    pub ands: usize,
    /// Safety targets.
    pub targets: usize,
    /// Maximum combinational depth (in AND gates).
    pub max_level: u32,
    /// Maximum fanout of any gate.
    pub max_fanout: usize,
    /// Registers with each kind of initial value: `[zero, one, nondet, fn]`.
    pub init_kinds: [usize; 4],
    /// Strongly connected components of the register dependency graph, and
    /// how many of them are cyclic.
    pub reg_sccs: usize,
    /// Cyclic SCCs.
    pub cyclic_sccs: usize,
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "inputs {}  registers {}  ands {}  targets {}",
            self.inputs, self.regs, self.ands, self.targets
        )?;
        writeln!(
            f,
            "max comb depth {}  max fanout {}",
            self.max_level, self.max_fanout
        )?;
        writeln!(
            f,
            "register inits: {} zero, {} one, {} nondet, {} functional",
            self.init_kinds[0], self.init_kinds[1], self.init_kinds[2], self.init_kinds[3]
        )?;
        write!(
            f,
            "register SCCs: {} ({} cyclic)",
            self.reg_sccs, self.cyclic_sccs
        )
    }
}

/// Computes [`NetlistStats`] for `n`.
///
/// # Examples
///
/// ```
/// use diam_netlist::{stats::stats, Init, Netlist};
///
/// let mut n = Netlist::new();
/// let i = n.input("i");
/// let r = n.reg("r", Init::Zero);
/// n.set_next(r, i.lit());
/// n.add_target(r.lit(), "t");
/// let s = stats(&n);
/// assert_eq!(s.regs, 1);
/// assert_eq!(s.reg_sccs, 1);
/// assert_eq!(s.cyclic_sccs, 0);
/// ```
pub fn stats(n: &Netlist) -> NetlistStats {
    // Structural fanout comes straight off the cached CSR transpose; targets
    // are observation points outside the graph, so they bump separately.
    let csr = n.csr();
    let mut fanout: Vec<usize> = (0..n.num_gates())
        .map(|v| csr.fanout_degree(v as u32))
        .collect();
    for t in n.targets() {
        fanout[t.lit.gate().index()] += 1;
    }
    let levels = analysis::levels(n);
    let mut init_kinds = [0usize; 4];
    for &r in n.regs() {
        match n.reg_init(r) {
            Init::Zero => init_kinds[0] += 1,
            Init::One => init_kinds[1] += 1,
            Init::Nondet => init_kinds[2] += 1,
            Init::Fn(_) => init_kinds[3] += 1,
        }
    }
    let graph = analysis::reg_graph(n, n.regs());
    let cond = analysis::condense(&graph);
    NetlistStats {
        inputs: n.num_inputs(),
        regs: n.num_regs(),
        ands: n.num_ands(),
        targets: n.targets().len(),
        max_level: levels.iter().copied().max().unwrap_or(0),
        max_fanout: fanout.iter().copied().max().unwrap_or(0),
        init_kinds,
        reg_sccs: cond.comps.len(),
        cyclic_sccs: cond.cyclic.iter().filter(|&&c| c).count(),
    }
}

/// A cheap structural fingerprint of a netlist: a 64-bit FNV-1a hash over
/// every gate's kind, fanin literals, register next-state / initial-value
/// functions, and the target list.
///
/// Two structurally identical netlists (same gates in the same order, same
/// connections, same targets) always hash equal; the pass manager uses this
/// to detect no-op transformations and fixpoints of `com*`-style repeated
/// pipelines without a full structural comparison.
///
/// # Examples
///
/// ```
/// use diam_netlist::{stats::fingerprint, Init, Netlist};
///
/// let mut n = Netlist::new();
/// let i = n.input("i");
/// let before = fingerprint(&n);
/// let r = n.reg("r", Init::Zero);
/// n.set_next(r, i.lit());
/// assert_ne!(before, fingerprint(&n), "structure changed, hash changed");
/// assert_eq!(fingerprint(&n), fingerprint(&n.clone()));
/// ```
pub fn fingerprint(n: &Netlist) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let lit_code = |l: crate::Lit| (l.gate().index() as u64) << 1 | u64::from(l.is_complement());
    for g in n.gates() {
        match n.kind(g) {
            GateKind::Const0 => mix(0),
            GateKind::Input => mix(1),
            GateKind::And(a, b) => {
                mix(2);
                mix(lit_code(a));
                mix(lit_code(b));
            }
            GateKind::Reg => {
                mix(3);
                mix(lit_code(n.reg_next(g)));
                match n.reg_init(g) {
                    Init::Zero => mix(4),
                    Init::One => mix(5),
                    Init::Nondet => mix(6),
                    Init::Fn(l) => {
                        mix(7);
                        mix(lit_code(l));
                    }
                }
            }
        }
    }
    mix(8);
    for t in n.targets() {
        mix(lit_code(t.lit));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let mut n = Netlist::new();
        let a = n.input("a").lit();
        let b = n.input("b").lit();
        let x = n.and(a, b);
        let y = n.and(x, a);
        let r = n.reg("r", Init::One);
        n.set_next(r, y);
        let s = n.reg("s", Init::Nondet);
        n.set_next(s, !s.lit());
        n.add_target(r.lit(), "t");
        let st = stats(&n);
        assert_eq!(st.inputs, 2);
        assert_eq!(st.regs, 2);
        assert_eq!(st.ands, 2);
        assert_eq!(st.max_level, 2);
        assert!(st.max_fanout >= 2, "input a fans out twice");
        assert_eq!(st.init_kinds, [0, 1, 1, 0]);
        assert_eq!(st.reg_sccs, 2);
        assert_eq!(st.cyclic_sccs, 1);
        // Display renders all lines.
        let text = st.to_string();
        assert!(text.contains("registers 2"));
        assert!(text.contains("1 cyclic"));
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let mut n = Netlist::new();
        let a = n.input("a").lit();
        let b = n.input("b").lit();
        let x = n.and(a, b);
        let f0 = fingerprint(&n);
        assert_eq!(f0, fingerprint(&n.clone()), "clone hashes identically");

        // Adding a target changes the hash even though no gate changes.
        let mut with_target = n.clone();
        with_target.add_target(x, "t");
        assert_ne!(f0, fingerprint(&with_target));

        // Complementing a target literal changes the hash.
        let mut neg_target = n.clone();
        neg_target.add_target(!x, "t");
        assert_ne!(fingerprint(&with_target), fingerprint(&neg_target));

        // Changing a register's init kind changes the hash.
        let mut n1 = n.clone();
        let r1 = n1.reg("r", Init::Zero);
        n1.set_next(r1, x);
        let mut n2 = n.clone();
        let r2 = n2.reg("r", Init::Nondet);
        n2.set_next(r2, x);
        assert_ne!(fingerprint(&n1), fingerprint(&n2));
    }
}

//! Cube-and-conquer splitting of deep BMC obligations.
//!
//! A depth-`d` obligation ("is the target hittable at exactly depth `d`?")
//! is split into `2^k` **cubes**: conjunctions of `k` assumption literals
//! over high-fanout state variables of the target's cone, encoded at the
//! middle frame `⌊d/2⌋`. The split is exhaustive by construction — every
//! assignment falls into exactly one cube — so:
//!
//! * every cube UNSAT ⇒ the depth is clean (same verdict as the monolithic
//!   solve);
//! * any cube SAT ⇒ a counterexample (its model extends to a full witness);
//! * any cube `Unknown` (conflict budget) without a SAT ⇒ `Unknown`.
//!
//! Cubes are farmed as [`diam_par`] jobs. Each worker **clones** the base
//! incremental solver — clones share the variable numbering, which is what
//! makes learnt-clause exchange sound: a clause learnt by one cube worker
//! is implied by the shared formula (assumptions enter conflict analysis as
//! decisions, never as axioms), so any sibling may
//! [`import_clause`](Solver::import_clause) it.
//!
//! ## Determinism contract
//!
//! * [`CubeMode::Reproducible`] — cube order is fixed, jobs are pure
//!   (no clause exchange, no sibling cancellation, no portfolio seeds), and
//!   the merge takes the first event in cube-index order: output is
//!   **bit-identical** across every `Parallelism` setting.
//! * [`CubeMode::Fast`] — glue clauses (LBD ≤ 2, the arena's core tier)
//!   travel through a lock-free [`Exchange`]; a SAT cube cancels its
//!   outstanding siblings through a hierarchical
//!   [`CancelToken::child`]; workers get per-cube restart jitter. Verdicts
//!   (SAT/UNSAT/Unknown and hit depths) are unchanged — only which valid
//!   witness is returned may vary.

use crate::{extract_witness, solve_traced, BmcOptions};
use diam_netlist::{GateKind, Lit, Netlist};
use diam_par::{CancelToken, Exchange};
use diam_sat::{Lit as SatLit, SolveResult, Solver};
use diam_transform::unroll::Unroller;

/// How cube-and-conquer treats determinism; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CubeMode {
    /// No cube splitting: every depth is one monolithic solve.
    #[default]
    Off,
    /// Fixed cube order, pure jobs, deterministic merge: bit-identical
    /// output across all `Parallelism` settings.
    Reproducible,
    /// Clause sharing + sibling cancellation + portfolio restart jitter:
    /// same verdicts, possibly different (always valid) witnesses.
    Fast,
}

impl CubeMode {
    /// Parses a `--cube` flag value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unparsable value.
    pub fn parse(s: &str) -> Result<CubeMode, String> {
        match s {
            "off" => Ok(CubeMode::Off),
            "repro" | "reproducible" => Ok(CubeMode::Reproducible),
            "fast" => Ok(CubeMode::Fast),
            _ => Err(format!(
                "bad --cube value {s:?} (expected `off`, `repro`, or `fast`)"
            )),
        }
    }
}

impl std::fmt::Display for CubeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CubeMode::Off => write!(f, "off"),
            CubeMode::Reproducible => write!(f, "repro"),
            CubeMode::Fast => write!(f, "fast"),
        }
    }
}

/// Options for the cube layer (a field of [`BmcOptions`]).
#[derive(Debug, Clone)]
pub struct CubeOptions {
    /// Splitting / determinism mode.
    pub mode: CubeMode,
    /// Cube variables per depth: `2^vars` cubes (clamped to the state
    /// variables actually available in the cone).
    pub vars: u32,
    /// Only depths at or above this are split; shallow obligations are
    /// cheaper monolithic.
    pub min_depth: u64,
}

impl Default for CubeOptions {
    fn default() -> CubeOptions {
        CubeOptions {
            mode: CubeMode::Off,
            vars: 3,
            min_depth: 4,
        }
    }
}

/// Glue tier that travels between cube workers (the arena's core tier).
const SHARE_LBD: u32 = 2;

/// Outcome of one depth solved by cube split (or monolithically when the
/// split is not applicable).
pub(crate) enum CubeDepthOutcome {
    /// Some cube is satisfiable; the winning worker's solver holds the
    /// model (extract a witness with the shared unroller).
    Sat(Box<Solver>),
    /// Every cube is unsatisfiable: the depth is clean.
    Unsat,
    /// A conflict budget expired in some cube and no cube was SAT.
    Unknown,
}

/// Per-cube job result, merged in cube-index order.
enum CubeJob {
    Sat(Box<Solver>),
    Unsat,
    Unknown,
    /// The cube never ran: a sibling's SAT (or the parent token) cancelled
    /// it. Only observed when an earlier-merged cube is SAT or the parent
    /// was cancelled.
    Cancelled,
}

/// Whether this depth should be cube-split at all.
pub(crate) fn applicable(opts: &BmcOptions, depth: u64) -> bool {
    opts.cube.mode != CubeMode::Off && depth >= opts.cube.min_depth && opts.cube.vars > 0
}

/// Picks up to `k` cube literals: registers of the target's cone of
/// influence, scored by static fanout (descending; gate index ascending as
/// the tie-break — a deterministic "most constrained first" lookahead),
/// encoded at the middle frame `⌊depth/2⌋` of the unrolling. Encoding may
/// create frames/variables, which is why the base solver is mutated here —
/// *before* it is cloned for the cube workers.
fn select_cube_lits(
    n: &Netlist,
    solver: &mut Solver,
    unroller: &mut Unroller<'_>,
    target: Lit,
    depth: u64,
    k: u32,
) -> Vec<SatLit> {
    let cone = diam_netlist::analysis::coi(n, [target]);
    if cone.regs.is_empty() {
        return Vec::new();
    }
    // Static fanout per gate: references as an AND fanin or a register's
    // next-state function.
    let mut fanout = vec![0u32; n.num_gates()];
    for g in n.gates() {
        match n.kind(g) {
            GateKind::And(a, b) => {
                fanout[a.gate().index()] += 1;
                fanout[b.gate().index()] += 1;
            }
            GateKind::Reg => fanout[n.reg_next(g).gate().index()] += 1,
            _ => {}
        }
    }
    let mut scored: Vec<(u32, diam_netlist::Gate)> =
        cone.regs.iter().map(|&r| (fanout[r.index()], r)).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.index().cmp(&b.1.index())));

    let frame = (depth / 2) as usize;
    let mut lits: Vec<SatLit> = Vec::new();
    for (_, r) in scored {
        let l = unroller.lit_at(solver, r.lit(), frame);
        // Distinct SAT variables only: equivalent registers would produce
        // trivially empty cubes.
        if lits.iter().all(|p| p.var() != l.var()) {
            lits.push(l);
        }
        if lits.len() >= k as usize {
            break;
        }
    }
    lits
}

/// Solves the depth-`depth` obligation of `target` by cube-and-conquer.
///
/// The base incremental `solver`/`unroller` pair is mutated only by
/// encoding (the obligation literal and the cube frame); the search runs on
/// per-cube clones, so the base solver's clause database is untouched and
/// the caller's incremental loop continues as if a monolithic solve had
/// returned. `parent` chains the cube group under the caller's cancellation
/// scope: cancelling the parent cancels every outstanding cube.
pub(crate) fn solve_depth_cubes(
    n: &Netlist,
    solver: &mut Solver,
    unroller: &mut Unroller<'_>,
    target: Lit,
    depth: u64,
    parent: Option<&CancelToken>,
    opts: &BmcOptions,
) -> CubeDepthOutcome {
    let obligation = unroller.lit_at(solver, target, depth as usize);
    let cube_lits = select_cube_lits(n, solver, unroller, target, depth, opts.cube.vars);
    if cube_lits.is_empty() {
        // No state variables to split on: monolithic fallback.
        return match solve_traced(solver, &[obligation], depth) {
            SolveResult::Sat => CubeDepthOutcome::Sat(Box::new(solver.clone())),
            SolveResult::Unsat => CubeDepthOutcome::Unsat,
            SolveResult::Unknown => CubeDepthOutcome::Unknown,
        };
    }
    let k = cube_lits.len() as u32;
    let ncubes = 1usize << k;
    let fast = opts.cube.mode == CubeMode::Fast;
    let mut sp = diam_obs::span!(
        "cube.split",
        depth = depth,
        cubes = ncubes,
        mode = if fast { "fast" } else { "repro" }
    );

    // The cube group hangs off the caller's token: a parent cancellation
    // reaches every cube, while a SAT cube cancels only its siblings.
    let root;
    let group = match parent {
        Some(t) => t.child(),
        None => {
            root = CancelToken::new();
            root.child()
        }
    };
    // Clause mailbox: one slot budget generous enough that glue overflow is
    // rare; overflow only drops sharing, never soundness.
    let exchange: Exchange<(usize, Vec<SatLit>)> = Exchange::new(ncubes * 256);

    let base = &*solver;
    let results = diam_par::run_with_token(
        opts.parallelism,
        &group,
        (0..ncubes).collect::<Vec<usize>>(),
        |_| 1,
        |_, m, token| {
            if token.is_cancelled() {
                return CubeJob::Cancelled;
            }
            let mut sp = diam_obs::span!("cube.solve", depth = depth, cube = m);
            let mut s = base.clone();
            let mut assumptions = vec![obligation];
            for (bit, &l) in cube_lits.iter().enumerate() {
                assumptions.push(if m >> bit & 1 == 1 { l } else { !l });
            }
            if fast {
                s.set_share_lbd_max(SHARE_LBD);
                // Portfolio jitter: a distinct nonzero restart seed per cube
                // (mixed with the caller's portfolio seed when one is set).
                s.set_restart_seed(0x9E37_79B9 ^ opts.portfolio ^ ((depth << 16) + m as u64 + 1));
                let imported_before = s.stats_ref().shared_in;
                let mut cursor = 0usize;
                for (from, clause) in exchange.drain_from(&mut cursor) {
                    if *from != m && !s.import_clause(clause) {
                        // Import proved the shared encoding root-UNSAT
                        // under no assumptions — every cube is UNSAT.
                        break;
                    }
                }
                // Imports land before `solve_traced`'s stats window opens;
                // attribute them to this cube's span explicitly.
                diam_obs::charge_sat_shared(s.stats_ref().shared_in - imported_before, 0);
            }
            let r = solve_traced(&mut s, &assumptions, depth);
            if fast {
                for clause in s.take_shared() {
                    exchange.publish((m, clause));
                }
            }
            match r {
                SolveResult::Sat => {
                    if fast {
                        // Siblings cannot contribute anything further.
                        token.cancel();
                    }
                    sp.record("outcome", "sat");
                    CubeJob::Sat(Box::new(s))
                }
                SolveResult::Unsat => {
                    s.mark_cube_refuted();
                    diam_obs::counter_add("cube.refuted", 1);
                    sp.record("outcome", "unsat");
                    CubeJob::Unsat
                }
                SolveResult::Unknown => {
                    sp.record("outcome", "unknown");
                    CubeJob::Unknown
                }
            }
        },
    );

    if exchange.dropped() > 0 {
        diam_obs::counter_add("cube.share_dropped", exchange.dropped() as u64);
    }

    // Merge in cube-index order; the first decisive event wins. In
    // reproducible mode no job is ever cancelled, so this scan is a pure
    // function of the job results — thread-count independent.
    let mut unknown = false;
    let mut refuted = 0u64;
    let mut sat: Option<Box<Solver>> = None;
    for job in results {
        match job {
            CubeJob::Sat(s) if sat.is_none() => sat = Some(s),
            CubeJob::Sat(_) => {}
            CubeJob::Unsat => refuted += 1,
            CubeJob::Unknown => unknown = true,
            // Cancelled cubes are unobserved verdicts: sound only because
            // either a SAT sibling decides the depth or the parent was
            // cancelled (the caller then discards this depth entirely).
            CubeJob::Cancelled => unknown = true,
        }
    }
    // Book-keep refuted cubes on the long-lived base solver so the counter
    // survives this depth (and shows up in end-of-run stats).
    for _ in 0..refuted {
        solver.mark_cube_refuted();
    }
    sp.record("refuted", refuted);
    if let Some(s) = sat {
        sp.record("outcome", "sat");
        CubeDepthOutcome::Sat(s)
    } else if unknown {
        sp.record("outcome", "unknown");
        CubeDepthOutcome::Unknown
    } else {
        sp.record("outcome", "unsat");
        CubeDepthOutcome::Unsat
    }
}

/// Convenience wrapper used by the BMC depth loops: solve depth `depth`,
/// producing a witness on SAT.
pub(crate) fn solve_depth_with_witness(
    n: &Netlist,
    solver: &mut Solver,
    unroller: &mut Unroller<'_>,
    target: Lit,
    depth: u64,
    parent: Option<&CancelToken>,
    opts: &BmcOptions,
) -> (SolveResult, Option<diam_netlist::sim::Witness>) {
    match solve_depth_cubes(n, solver, unroller, target, depth, parent, opts) {
        CubeDepthOutcome::Sat(winner) => {
            let witness = extract_witness(n, unroller, &winner, depth as usize);
            (SolveResult::Sat, Some(witness))
        }
        CubeDepthOutcome::Unsat => (SolveResult::Unsat, None),
        CubeDepthOutcome::Unknown => (SolveResult::Unknown, None),
    }
}

//! Direct demonstrations of the paper's theorems and — just as importantly —
//! its *negative* results: concrete netlists on which over- and under-
//! approximate abstractions shift the diameter in both directions, which is
//! why the pipeline's type structure refuses to back-translate through them
//! (Sections 3.5–3.6).

use diam::core::exact::{explore, ExploreLimits};
use diam::core::{diameter_bound, Bound, Pipeline, StructuralOptions};
use diam::netlist::{Gate, Init, Lit, Netlist};
use diam::transform::approx::{case_split, localize};
use diam::transform::com::{sweep, SweepOptions};
use diam::transform::enlarge::{enlarge, EnlargeOptions};
use diam::transform::fold::{c_slow, detect, fold};
use diam::transform::retime::retime;

fn bound_of(n: &Netlist, t: Lit) -> Bound {
    diameter_bound(n, t, &StructuralOptions::default()).bound
}

/// The "initial-state eccentricity + 1" of a small netlist — the quantity
/// every diameter bound must dominate for BMC completeness.
fn eccentricity_plus_one(n: &Netlist) -> u64 {
    explore(n, &ExploreLimits::default())
        .expect("small")
        .eccentricity
        + 1
}

// --- Theorem 1: trace-equivalence-preserving transformations -------------

#[test]
fn theorem1_redundancy_removal_preserves_diameter_semantics() {
    // A design with a redundant register; the swept netlist's bound is valid
    // for the original as-is.
    let mut n = Netlist::new();
    let i = n.input("i");
    let r1 = n.reg("r1", Init::Zero);
    let r2 = n.reg("r2", Init::Zero);
    n.set_next(r1, i.lit());
    n.set_next(r2, i.lit());
    let r3 = n.reg("r3", Init::Zero);
    let x = n.and(r1.lit(), r2.lit());
    n.set_next(r3, x);
    n.add_target(r3.lit(), "t");

    let swept = sweep(&n, &SweepOptions::default());
    assert!(swept.netlist.num_regs() < n.num_regs());
    let b = bound_of(&swept.netlist, swept.netlist.targets()[0].lit);
    // Identity back-translation: the same bound covers the original.
    let ecc = eccentricity_plus_one(&n);
    let Bound::Finite(b) = b else {
        panic!("finite")
    };
    assert!(
        ecc <= b,
        "swept bound {b} must cover original eccentricity {ecc}"
    );
}

// --- Theorem 2: retiming ---------------------------------------------------

#[test]
fn theorem2_lag_compensates_retimed_bound() {
    // Pipeline into a toggling register.
    let mut n = Netlist::new();
    let i = n.input("i");
    let mut prev = i.lit();
    for k in 0..4 {
        let r = n.reg(format!("p{k}"), Init::Zero);
        n.set_next(r, prev);
        prev = r.lit();
    }
    let tog = n.reg("tog", Init::Zero);
    let nx = n.xor(tog.lit(), prev);
    n.set_next(tog, nx);
    n.add_target(tog.lit(), "t");

    let ret = retime(&n).expect("retimable");
    let t_new = ret.netlist.targets()[0].lit;
    let b_new = bound_of(&ret.netlist, t_new);
    let lag = ret.skew(n.targets()[0].lit.gate());
    let back = b_new.add_const(lag);
    // The compensated bound covers the original behaviour.
    let ecc = eccentricity_plus_one(&n);
    let Bound::Finite(b) = back else {
        panic!("finite")
    };
    assert!(ecc <= b, "retimed+lag bound {b} vs eccentricity {ecc}");
    // And retiming genuinely reduced registers.
    assert!(ret.regs_after < n.num_regs());
}

#[test]
fn theorem2_slack_can_increase_bounds() {
    // The paper's S1196/S15850_1 observation: the +lag term can make a
    // retimed bound slightly *larger* than the original one.
    let mut n = Netlist::new();
    let i = n.input("i");
    let r = n.reg("r", Init::Zero);
    n.set_next(r, i.lit());
    n.add_target(r.lit(), "t");
    let plain = Pipeline::new().bound_targets(&n, &StructuralOptions::default());
    let ret = Pipeline::com_ret_com().bound_targets(&n, &StructuralOptions::default());
    // Both useful; the retimed one may be equal or slightly larger, never
    // smaller here (the pipeline is already depth 1).
    assert!(ret[0].original >= plain[0].original);
    assert!(ret[0].original.is_useful(50));
}

// --- Theorem 3: state folding ----------------------------------------------

#[test]
fn theorem3_folding_factor_bounds_original() {
    // A base counter, 2-slowed; folding recovers it and ×2 covers the
    // original.
    let mut base = Netlist::new();
    let b: Vec<Gate> = (0..2)
        .map(|k| base.reg(format!("b{k}"), Init::Zero))
        .collect();
    let n1 = base.xor(b[1].lit(), b[0].lit());
    base.set_next(b[0], !b[0].lit());
    base.set_next(b[1], n1);
    let t = base.and(b[0].lit(), b[1].lit());
    base.add_target(t, "t");

    let slowed = c_slow(&base, 2);
    let coloring = detect(&slowed, 2);
    assert_eq!(coloring.c, 2);
    // Keep the color of the visible (tail) registers.
    let tail_pos = slowed
        .regs()
        .iter()
        .position(|&r| slowed.name(r).unwrap().ends_with("_p1"))
        .unwrap();
    let folded = fold(&slowed, &coloring, coloring.colors[tail_pos]).unwrap();
    let b_folded = bound_of(&folded.netlist, folded.netlist.targets()[0].lit);
    let back = b_folded.mul_const(2);
    let ecc = eccentricity_plus_one(&slowed);
    let Bound::Finite(v) = back else {
        panic!("finite")
    };
    assert!(ecc <= v, "folded ×2 bound {v} vs slowed eccentricity {ecc}");
}

// --- Theorem 4: target enlargement ------------------------------------------

#[test]
fn theorem4_enlarged_bound_plus_k_is_complete() {
    // Mod-8 counter, target value 6, enlarged by k: earliest hit of t' is
    // earliest(t) − k, and d̂(t') + k covers the original's earliest hit.
    let mut n = Netlist::new();
    let b: Vec<Gate> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
    let mut carry = Lit::TRUE;
    for r in &b {
        let nk = n.xor(r.lit(), carry);
        carry = n.and(r.lit(), carry);
        n.set_next(*r, nk);
    }
    let t = {
        let x = n.and(!b[0].lit(), b[1].lit());
        n.and(x, b[2].lit())
    };
    n.add_target(t, "six");
    let truth = explore(&n, &ExploreLimits::default()).unwrap();
    let hit = truth.earliest_hit[0].expect("reachable");
    assert_eq!(hit, 6);

    for k in 1..=4u32 {
        let e = enlarge(
            &n,
            0,
            &EnlargeOptions {
                k,
                ..Default::default()
            },
        )
        .unwrap();
        let te = e.netlist.targets()[0].lit;
        let be = bound_of(&e.netlist, te);
        let Bound::Finite(be) = be else {
            panic!("finite")
        };
        assert!(
            hit < be + u64::from(k),
            "k={k}: d̂(t')+k = {} must cover hit {hit}",
            be + u64::from(k)
        );
    }
}

// --- §3.5: localization is not diameter-sound -------------------------------

#[test]
fn localization_can_decrease_the_apparent_diameter() {
    // An 8-step counter chain: localizing the carry path makes every bit a
    // free input, so the abstraction reaches everything immediately — its
    // diameter collapses while the original needs 7 steps.
    let mut n = Netlist::new();
    let b: Vec<Gate> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
    let mut carry = Lit::TRUE;
    for r in &b {
        let nk = n.xor(r.lit(), carry);
        carry = n.and(r.lit(), carry);
        n.set_next(*r, nk);
    }
    let t = n.and_many(b.iter().map(|r| r.lit()).collect::<Vec<_>>());
    n.add_target(t, "all_ones");

    // Localize the next-state cones: each register's driver becomes a free
    // input.
    let cut: Vec<Gate> = b.iter().map(|&r| n.reg_next(r).gate()).collect();
    let loc = localize(&n, &cut);
    let orig_ecc = eccentricity_plus_one(&n);
    let abs_ecc = eccentricity_plus_one(&loc.netlist);
    assert!(
        abs_ecc < orig_ecc,
        "localization shrank the diameter ({abs_ecc} < {orig_ecc}): \
         a bound from the abstraction would be unsound for the original"
    );
}

#[test]
fn localization_can_increase_the_apparent_diameter() {
    // A register chain whose source is stuck at zero: the original visits
    // only the all-zero state (eccentricity 0); localizing the stuck driver
    // lets values crawl down the chain (eccentricity = chain length).
    let mut n = Netlist::new();
    let stuck = n.reg("stuck", Init::Zero);
    n.set_next(stuck, stuck.lit());
    let mut prev = stuck.lit();
    let mut chain = Vec::new();
    for k in 0..3 {
        let r = n.reg(format!("c{k}"), Init::Zero);
        n.set_next(r, prev);
        prev = r.lit();
        chain.push(r);
    }
    n.add_target(prev, "tail");
    let loc = localize(&n, &[stuck]);
    let orig_ecc = eccentricity_plus_one(&n);
    let abs_ecc = eccentricity_plus_one(&loc.netlist);
    assert!(
        abs_ecc > orig_ecc,
        "localization grew the diameter ({abs_ecc} > {orig_ecc}): \
         unreachable states became reachable"
    );
}

// --- §3.6: case splitting is not diameter-sound ------------------------------

#[test]
fn case_splitting_can_decrease_the_apparent_diameter() {
    // An input-enabled counter: with the enable case-split to 0 the design
    // freezes — its diameter collapses to 1 while the original walks the
    // full cycle.
    let mut n = Netlist::new();
    let en = n.input("en");
    let b: Vec<Gate> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
    let mut carry = en.lit();
    for r in &b {
        let nk = n.xor(r.lit(), carry);
        carry = n.and(r.lit(), carry);
        n.set_next(*r, nk);
    }
    let t = n.and_many(b.iter().map(|r| r.lit()).collect::<Vec<_>>());
    n.add_target(t, "all_ones");
    let cs = case_split(&n, &[(en, false)]);
    let orig_ecc = eccentricity_plus_one(&n);
    let abs_ecc = eccentricity_plus_one(&cs.netlist);
    assert!(abs_ecc < orig_ecc, "case splitting shrank the diameter");
}

#[test]
fn case_splitting_can_increase_the_apparent_diameter() {
    // A loadable counter: with `load` free the design can jump to any value
    // in one step (small diameter); case-splitting load := 0 forces the slow
    // increment walk.
    let mut n = Netlist::new();
    let load = n.input("load");
    let d: Vec<Gate> = (0..3).map(|k| n.input(format!("d{k}"))).collect();
    let b: Vec<Gate> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
    let mut carry = Lit::TRUE;
    for (k, r) in b.iter().enumerate() {
        let inc = n.xor(r.lit(), carry);
        carry = n.and(r.lit(), carry);
        let nx = n.mux(load.lit(), d[k].lit(), inc);
        n.set_next(*r, nx);
    }
    let t = n.and_many(b.iter().map(|r| r.lit()).collect::<Vec<_>>());
    n.add_target(t, "all_ones");
    let cs = case_split(&n, &[(load, false)]);
    let orig_ecc = eccentricity_plus_one(&n);
    let abs_ecc = eccentricity_plus_one(&cs.netlist);
    assert!(
        abs_ecc > orig_ecc,
        "case splitting grew the diameter ({abs_ecc} > {orig_ecc}): \
         reachable shortcuts disappeared"
    );
}

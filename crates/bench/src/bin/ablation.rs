//! Ablation studies backing the paper's side observations (§3, §4 prose):
//!
//! 1. **Recurrence diameter vs structural bound** — the recurrence diameter
//!    can be exponentially looser (register files) or equally tight
//!    (counters), and its cost explodes where the structural bound is
//!    constant-time.
//! 2. **Theorem 2 slack** — bounds may *increase* slightly after retiming
//!    (the S1196/S15850_1 effect): the negated target lag is added even when
//!    retiming did not reduce the cone.
//! 3. **State folding factor** — folding a c-slowed design divides the
//!    bound by ~c before the ×c back-translation, and the folded netlist is
//!    cheaper to analyze.
//! 4. **Per-engine register reductions** — COM/RET reductions per suite,
//!    mirroring the paper's §4 reduction statistics.
//!
//! Usage: `cargo run -p diam-bench --release --bin ablation [--jobs <N|seq|auto>]
//! [--obs off|summary|json|live] [--trace-out <path.jsonl>]`

use diam_bench::parse_cli;
use diam_core::recurrence::{recurrence_diameter, RecurrenceOptions, RecurrenceResult};
use diam_core::{diameter_bound, Parallelism, Pipeline, StructuralOptions};
use diam_gen::archetypes::{counter, pipeline, register_file};
use diam_gen::iscas;
use diam_netlist::{Lit, Netlist};
use diam_transform::fold::{c_slow, detect, fold};

fn main() {
    let cli = parse_cli(
        "ablation [--jobs <N|seq|auto>] [--obs off|summary|json|live] [--trace-out <path.jsonl>]",
    );
    let session = cli.session("ablation");
    ablation_recurrence();
    ablation_theorem2_slack(cli.jobs);
    ablation_folding();
    ablation_register_reduction();
    ablation_tightness();
    cli.finish(session);
}

fn ablation_recurrence() {
    println!("== Ablation 1: recurrence diameter vs structural bound ==\n");
    println!(
        "{:<26}{:>12}{:>14}{:>14}",
        "design", "structural", "recurrence", "rec. time"
    );
    let cases: Vec<(String, Netlist)> = {
        let mut v = Vec::new();
        for depth in [4usize, 6] {
            let mut n = Netlist::new();
            let p = pipeline(&mut n, "p", depth);
            n.add_target(p.tail, "t");
            v.push((format!("pipeline depth {depth}"), n));
        }
        for (rows, width) in [(2usize, 2usize), (2, 4)] {
            let mut n = Netlist::new();
            let m = register_file(&mut n, "m", rows, width);
            let cells: Vec<Lit> = m.all_cells().iter().map(|r| r.lit()).collect();
            let t = n.and_many(cells);
            n.add_target(t, "t");
            v.push((format!("register file {rows}x{width}"), n));
        }
        for bits in [3usize, 4] {
            let mut n = Netlist::new();
            let c = counter(&mut n, "c", bits, Lit::TRUE);
            n.add_target(c.all_ones, "t");
            v.push((format!("counter {bits} bits"), n));
        }
        v
    };
    for (name, n) in cases {
        let t = n.targets()[0].lit;
        let structural = diameter_bound(&n, t, &StructuralOptions::default()).bound;
        let t0 = std::time::Instant::now();
        let rec = recurrence_diameter(
            &n,
            t,
            &RecurrenceOptions {
                max_length: 24,
                conflict_budget: Some(30_000),
                ..Default::default()
            },
        );
        let rec_str = match rec {
            RecurrenceResult::Exact(v) => v.to_string(),
            RecurrenceResult::Exceeded(v) => format!(">{v}"),
        };
        println!(
            "{name:<26}{:>12}{:>14}{:>13.1?}",
            structural.to_string(),
            rec_str,
            t0.elapsed()
        );
    }
    println!();
}

fn ablation_theorem2_slack(jobs: Parallelism) {
    println!("== Ablation 2: Theorem 2 slack (bounds may grow after RET) ==\n");
    // The suite designs show the paper's S1196 / S15850_1 effect directly:
    // the average useful bound *rises* after retiming even though the same
    // targets stay useful — the negated target lag is added even where the
    // cone had nothing to gain.
    for name in ["S1196", "S15850_1", "S9234_1"] {
        let (_, n) = iscas::suite(1)
            .into_iter()
            .find(|(p, _)| p.name == name)
            .expect("design");
        let avg = |pipe: &Pipeline| -> f64 {
            let opts = StructuralOptions {
                parallelism: jobs,
                ..StructuralOptions::default()
            };
            let bounds = pipe.bound_targets(&n, &opts);
            let useful: Vec<u64> = bounds
                .iter()
                .filter_map(|b| b.original.finite().filter(|&v| v < 50))
                .collect();
            if useful.is_empty() {
                0.0
            } else {
                useful.iter().sum::<u64>() as f64 / useful.len() as f64
            }
        };
        let plain = avg(&Pipeline::new());
        let ret = avg(&Pipeline::com_ret_com());
        println!(
            "{name:<10} avg useful d̂: plain {plain:.1}  after COM,RET,COM {ret:.1}  (Δ = {:+.1})",
            ret - plain
        );
    }
    println!(
        "\nThe positive Δ is the inequality of Theorem 2: the negated target\n\
         lag is added even when retiming did not shrink that particular\n\
         cone — the paper reports the same drift (S1196: 3.3 -> 4.3). The\n\
         loss is bounded by the lag; the potential gain is exponential.\n"
    );
}

fn ablation_folding() {
    println!("== Ablation 3: state folding (Theorem 3) ==\n");
    for c_factor in [2u32, 3, 4] {
        // Base: a counter observed at its top bit.
        let mut base = Netlist::new();
        let cnt = counter(&mut base, "c", 3, Lit::TRUE);
        base.add_target(cnt.all_ones, "t");
        let slowed = c_slow(&base, c_factor);
        let t_slowed = slowed.targets()[0].lit;
        let direct = diameter_bound(&slowed, t_slowed, &StructuralOptions::default()).bound;
        let coloring = detect(&slowed, c_factor);
        let tail_pos = slowed
            .regs()
            .iter()
            .position(|&r| {
                slowed
                    .name(r)
                    .is_some_and(|s| s.ends_with(&format!("_p{}", c_factor - 1)))
            })
            .unwrap();
        let folded = fold(&slowed, &coloring, coloring.colors[tail_pos]).unwrap();
        let t_folded = folded.netlist.targets()[0].lit;
        let fb = diameter_bound(&folded.netlist, t_folded, &StructuralOptions::default()).bound;
        println!(
            "{c_factor}-slowed counter: direct d̂ = {:<12} folded d̂ = {} ⇒ back-translated {} \
             ({} regs -> {})",
            direct.to_string(),
            fb,
            fb.mul_const(u64::from(c_factor)),
            slowed.num_regs(),
            folded.netlist.num_regs()
        );
    }
    println!(
        "\nDirect bounding sees c× the registers (exponentially worse GC\n\
         factors); folding first and multiplying by c is exponentially\n\
         tighter.\n"
    );
}

fn ablation_register_reduction() {
    println!("== Ablation 4: register reductions per engine (ISCAS suite) ==\n");
    let mut before = 0usize;
    let mut after_com = 0usize;
    let mut after_ret = 0usize;
    for (_, n) in iscas::suite(1) {
        before += n.num_regs();
        let com = Pipeline::com().run(&n);
        after_com += com.netlist.num_regs();
        let ret = Pipeline::com_ret_com().run(&n);
        after_ret += ret.netlist.num_regs();
    }
    println!("registers: original Σ = {before}");
    println!(
        "           after COM        Σ = {after_com} ({:.0}% reduction)",
        100.0 * (before - after_com) as f64 / before as f64
    );
    println!(
        "           after COM,RET,COM Σ = {after_ret} ({:.0}% reduction)",
        100.0 * (before - after_ret) as f64 / before as f64
    );
    println!(
        "\n(The paper cites 27% register reduction for COM+RET on ISCAS89\n\
         and 62% on GP netlists; the shape — RET removing most acyclic\n\
         registers — is reproduced above and in the table columns.)"
    );
}

fn ablation_tightness() {
    use diam_core::exact::{state_diameter, ExploreLimits};
    println!("\n== Ablation 5: structural bound vs exact state diameter ==\n");
    println!(
        "{:<26}{:>12}{:>14}{:>12}",
        "design", "structural", "exact (pair)", "ratio"
    );
    let cases: Vec<(String, Netlist)> = {
        let mut v = Vec::new();
        for depth in [3usize, 5, 8] {
            let mut n = Netlist::new();
            let p = pipeline(&mut n, "p", depth);
            let all: Vec<Lit> = p.regs.iter().map(|r| r.lit()).collect();
            let t = n.and_many(all);
            n.add_target(t, "t");
            v.push((format!("pipeline depth {depth}"), n));
        }
        for (rows, width) in [(2usize, 2usize), (4, 2)] {
            let mut n = Netlist::new();
            let m = register_file(&mut n, "m", rows, width);
            let cells: Vec<Lit> = m.all_cells().iter().map(|r| r.lit()).collect();
            let t = n.and_many(cells);
            n.add_target(t, "t");
            v.push((format!("register file {rows}x{width}"), n));
        }
        for bits in [3usize, 4] {
            let mut n = Netlist::new();
            let c = counter(&mut n, "c", bits, Lit::TRUE);
            n.add_target(c.all_ones, "t");
            v.push((format!("counter {bits} bits"), n));
        }
        v
    };
    for (name, n) in cases {
        let t = n.targets()[0].lit;
        let structural = diameter_bound(&n, t, &StructuralOptions::default()).bound;
        let exact = state_diameter(
            &n,
            &ExploreLimits {
                max_regs: 16,
                max_inputs: 10,
            },
        );
        match (structural.finite(), exact) {
            (Some(s), Ok(e)) => {
                println!(
                    "{name:<26}{s:>12}{:>14}{:>11.2}x",
                    e.pairwise,
                    s as f64 / e.pairwise as f64
                );
                assert!(s >= e.pairwise, "structural bound below the exact diameter");
            }
            _ => println!("{name:<26}{:>12}{:>14}", structural.to_string(), "n/a"),
        }
    }
    println!(
        "\nThe structural bound is exact on the classified archetypes —\n\
         pipelines (depth+1), memories (rows+1), counters (2^k) — which is\n\
         why the paper's compositional partition pays off wherever designs\n\
         decompose into these species."
    );
}

//! Minimum-cost flow, used to solve the Leiserson–Saxe min-register
//! retiming LP exactly.
//!
//! The retiming LP
//!
//! ```text
//!   minimize   Σ_v c_v · r(v)
//!   subject to r(u) − r(v) ≤ w(e)   for every edge e = (u → v)
//! ```
//!
//! is the dual of a minimum-cost transshipment: find a flow `f ≥ 0` with
//! node imbalance `inflow(v) − outflow(v) = c_v` minimizing `Σ f(e)·w(e)`.
//! The optimal lags are recovered from the node potentials of the optimal
//! flow. This module implements the primal side (successive shortest paths
//! with Dijkstra over reduced costs) and exposes valid potentials.

/// A directed edge handle returned by [`MinCostFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
    cost: i64,
}

/// Error returned when the supplies cannot be routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleFlowError;

impl std::fmt::Display for InfeasibleFlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow supplies cannot be routed")
    }
}

impl std::error::Error for InfeasibleFlowError {}

/// A minimum-cost flow network with non-negative edge costs.
///
/// # Examples
///
/// ```
/// use diam_transform::flow::MinCostFlow;
///
/// let mut net = MinCostFlow::new(3);
/// let cheap = net.add_edge(0, 1, 10, 1);
/// let _expensive = net.add_edge(0, 1, 10, 5);
/// net.add_edge(1, 2, 10, 0);
/// let cost = net.solve(&[4, 0, -4])?;
/// assert_eq!(cost, 4);             // all flow takes the cheap arc
/// assert_eq!(net.flow(cheap), 4);
/// # Ok::<(), diam_transform::flow::InfeasibleFlowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    num_nodes: usize,
    /// Arcs in pairs: `2k` forward, `2k+1` backward (residual).
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    potentials: Vec<i64>,
}

impl MinCostFlow {
    /// Creates a network with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> MinCostFlow {
        MinCostFlow {
            num_nodes,
            arcs: Vec::new(),
            adj: vec![Vec::new(); num_nodes],
            potentials: vec![0; num_nodes],
        }
    }

    /// Adds an edge `u → v` with the given capacity and cost.
    ///
    /// # Panics
    ///
    /// Panics if the cost is negative or a node index is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(cost >= 0, "negative edge cost");
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "node out of range"
        );
        let id = self.arcs.len();
        self.adj[u].push(id);
        self.arcs.push(Arc { to: v, cap, cost });
        self.adj[v].push(id + 1);
        self.arcs.push(Arc {
            to: u,
            cap: 0,
            cost: -cost,
        });
        EdgeId(id)
    }

    /// The flow currently on `e` (meaningful after [`solve`](Self::solve)).
    pub fn flow(&self, e: EdgeId) -> i64 {
        self.arcs[e.0 + 1].cap
    }

    /// Routes the given supplies (`supplies[v] > 0` = source of that many
    /// units, `< 0` = sink) at minimum cost. Returns the total cost.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleFlowError`] if the supplies do not balance or
    /// cannot be routed through the network.
    ///
    /// # Panics
    ///
    /// Panics if `supplies.len()` differs from the node count.
    pub fn solve(&mut self, supplies: &[i64]) -> Result<i64, InfeasibleFlowError> {
        assert_eq!(supplies.len(), self.num_nodes, "supply vector width");
        if supplies.iter().sum::<i64>() != 0 {
            return Err(InfeasibleFlowError);
        }
        // Attach a super source/sink.
        let s = self.num_nodes;
        let t = self.num_nodes + 1;
        self.adj.push(Vec::new());
        self.adj.push(Vec::new());
        self.potentials = vec![0; self.num_nodes + 2];
        let mut need = 0i64;
        let old_nodes = self.num_nodes;
        self.num_nodes += 2;
        for (v, &b) in supplies.iter().enumerate() {
            if b > 0 {
                self.add_edge(s, v, b, 0);
                need += b;
            } else if b < 0 {
                self.add_edge(v, t, -b, 0);
            }
        }

        let mut total_cost = 0i64;
        let mut routed = 0i64;
        while routed < need {
            // Dijkstra over reduced costs from s.
            let dist = self.dijkstra(s);
            if dist[t].0 == i64::MAX {
                // Restore node count before failing.
                self.detach_super(old_nodes);
                return Err(InfeasibleFlowError);
            }
            // Update potentials; nodes the search did not reach are clamped
            // to the sink distance, which preserves the non-negative
            // reduced-cost invariant (they can only be reached later through
            // arcs created along this augmenting path).
            let dt = dist[t].0;
            for (pot, d) in self.potentials.iter_mut().zip(&dist) {
                *pot += d.0.min(dt);
            }
            // Find bottleneck along the shortest path.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let a = dist[v].1;
                bottleneck = bottleneck.min(self.arcs[a].cap);
                v = self.arcs[a ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let a = dist[v].1;
                self.arcs[a].cap -= bottleneck;
                self.arcs[a ^ 1].cap += bottleneck;
                total_cost += bottleneck * self.arcs[a].cost;
                v = self.arcs[a ^ 1].to;
            }
            routed += bottleneck;
        }
        self.detach_super(old_nodes);
        Ok(total_cost)
    }

    fn detach_super(&mut self, old_nodes: usize) {
        // Leave the super arcs in place (they are saturated or harmless) but
        // restore the public node count and drop super potentials.
        self.num_nodes = old_nodes;
        self.potentials.truncate(old_nodes);
    }

    /// Shortest distances by reduced cost; returns `(dist, incoming_arc)`.
    fn dijkstra(&self, s: usize) -> Vec<(i64, usize)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![(i64::MAX, usize::MAX); self.num_nodes];
        let mut done = vec![false; self.num_nodes];
        let mut heap = BinaryHeap::new();
        dist[s].0 = 0;
        heap.push(Reverse((0i64, s)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if done[v] {
                continue;
            }
            done[v] = true;
            for &a in &self.adj[v] {
                let arc = &self.arcs[a];
                if arc.cap <= 0 {
                    continue;
                }
                let rc = arc.cost + self.potentials[v] - self.potentials[arc.to];
                debug_assert!(rc >= 0, "negative reduced cost");
                let nd = d + rc;
                if nd < dist[arc.to].0 {
                    dist[arc.to] = (nd, a);
                    heap.push(Reverse((nd, arc.to)));
                }
            }
        }
        dist
    }

    /// Node potentials `π` of the optimal flow, valid after a successful
    /// [`solve`](Self::solve): for every residual arc `u → v` with capacity,
    /// `cost(u,v) + π(u) − π(v) ≥ 0`. For the retiming LP the optimal lags
    /// are `r(v) = −π(v)`.
    ///
    /// Computed robustly with Bellman–Ford from a virtual root, so nodes the
    /// Dijkstra passes never reached still receive valid values.
    pub fn valid_potentials(&self) -> Vec<i64> {
        // Queue-based Bellman–Ford (SPFA) over the residual graph; all nodes
        // start at 0 (a virtual root). The optimal flow has no negative
        // residual cycles, so this terminates.
        let mut pot = vec![0i64; self.num_nodes];
        let mut in_queue = vec![true; self.num_nodes];
        let mut queue: std::collections::VecDeque<usize> = (0..self.num_nodes).collect();
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            for &a in &self.adj[u] {
                let arc = &self.arcs[a];
                if arc.cap <= 0 || arc.to >= self.num_nodes {
                    continue;
                }
                if pot[u] + arc.cost < pot[arc.to] {
                    pot[arc.to] = pot[u] + arc.cost;
                    if !in_queue[arc.to] {
                        in_queue[arc.to] = true;
                        queue.push_back(arc.to);
                    }
                }
            }
        }
        pot
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror time-steps here
mod tests {
    use super::*;

    #[test]
    fn simple_path_cost() {
        let mut net = MinCostFlow::new(3);
        net.add_edge(0, 1, 5, 2);
        net.add_edge(1, 2, 5, 3);
        let cost = net.solve(&[3, 0, -3]).unwrap();
        assert_eq!(cost, 3 * 5);
    }

    #[test]
    fn chooses_cheaper_parallel_edge_first() {
        let mut net = MinCostFlow::new(2);
        let cheap = net.add_edge(0, 1, 2, 1);
        let dear = net.add_edge(0, 1, 10, 4);
        let cost = net.solve(&[5, -5]).unwrap();
        assert_eq!(cost, 2 + 3 * 4);
        assert_eq!(net.flow(cheap), 2);
        assert_eq!(net.flow(dear), 3);
    }

    #[test]
    fn unbalanced_supplies_are_infeasible() {
        let mut net = MinCostFlow::new(2);
        net.add_edge(0, 1, 1, 0);
        assert!(net.solve(&[2, -1]).is_err());
    }

    #[test]
    fn disconnected_demand_is_infeasible() {
        let mut net = MinCostFlow::new(3);
        net.add_edge(0, 1, 10, 0);
        assert!(net.solve(&[1, 0, -1]).is_err());
    }

    #[test]
    fn zero_supplies_cost_zero() {
        let mut net = MinCostFlow::new(2);
        net.add_edge(0, 1, 10, 7);
        assert_eq!(net.solve(&[0, 0]).unwrap(), 0);
    }

    #[test]
    fn potentials_satisfy_reduced_cost_optimality() {
        let mut net = MinCostFlow::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(0, 2, 2, 2);
        net.add_edge(1, 3, 3, 1);
        net.add_edge(2, 3, 3, 1);
        net.add_edge(1, 2, 2, 0);
        net.solve(&[4, 0, 0, -4]).unwrap();
        let pot = net.valid_potentials();
        for u in 0..4 {
            for &a in &net.adj[u] {
                let arc = &net.arcs[a];
                if arc.cap > 0 && arc.to < 4 {
                    assert!(
                        arc.cost + pot[u] - pot[arc.to] >= 0,
                        "arc {u}->{} violates optimality",
                        arc.to
                    );
                }
            }
        }
    }

    /// Cross-check the LP interpretation: minimize Σ c_v·r(v) subject to
    /// difference constraints, solved via flow potentials, against brute
    /// force over a small lag box.
    #[test]
    fn retiming_lp_matches_brute_force() {
        let mut state = 0xabcdu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let nv = 3 + (next() % 3) as usize; // 3..5 vertices
            let ne = nv + (next() % 4) as usize;
            // Random edges with weights 0..2; ensure the constraint graph
            // admits r = 0 (weights non-negative) so it is always feasible.
            let edges: Vec<(usize, usize, i64)> = (0..ne)
                .map(|_| {
                    (
                        (next() % nv as u64) as usize,
                        (next() % nv as u64) as usize,
                        (next() % 3) as i64,
                    )
                })
                .collect();
            // Node objective coefficients = indeg - outdeg (the retiming
            // register-count objective).
            let mut c = vec![0i64; nv];
            for &(u, v, _) in &edges {
                c[v] += 1;
                c[u] -= 1;
            }
            // Flow formulation: the LP stationarity condition reads
            // inflow(v) − outflow(v) = c_v, while `solve` takes supplies as
            // outflow − inflow, hence the negation.
            let mut net = MinCostFlow::new(nv);
            for &(u, v, w) in &edges {
                net.add_edge(u, v, 1_000, w);
            }
            let supplies: Vec<i64> = c.iter().map(|&x| -x).collect();
            if net.solve(&supplies).is_err() {
                continue; // degenerate instance (e.g. isolated supply)
            }
            let pot = net.valid_potentials();
            let lags: Vec<i64> = pot.iter().map(|&p| -p).collect();
            // Feasibility: r(u) - r(v) <= w(e).
            for &(u, v, w) in &edges {
                assert!(lags[u] - lags[v] <= w, "round {round}: infeasible lags");
            }
            let obj: i64 = (0..nv).map(|v| c[v] * lags[v]).sum();
            // Brute force over the box [-3, 3]^nv.
            let mut best = i64::MAX;
            let mut idx = vec![-3i64; nv];
            'outer: loop {
                let feasible = edges.iter().all(|&(u, v, w)| idx[u] - idx[v] <= w);
                if feasible {
                    let o: i64 = (0..nv).map(|v| c[v] * idx[v]).sum();
                    best = best.min(o);
                }
                for k in 0..nv {
                    idx[k] += 1;
                    if idx[k] <= 3 {
                        continue 'outer;
                    }
                    idx[k] = -3;
                }
                break;
            }
            assert_eq!(obj, best, "round {round}: objective mismatch");
        }
    }
}

//! Time-frame expansion of a netlist into a SAT solver (Tseitin encoding).
//!
//! The [`Unroller`] lazily encodes the value of any netlist literal at any
//! time-frame as a SAT literal. Frame-0 register values are either *free*
//! (for inductive reasoning and combinational sweeping, where the state is
//! unconstrained) or *initialized* (for BMC, where initial values apply).
//! Frame `t+1` register values are simply the frame-`t` encoding of the
//! register's next-state function, so consecutive frames share logic.

use diam_netlist::{GateKind, Init, Lit, Netlist};
use diam_sat::{Lit as SatLit, Solver};

/// How frame-0 register values are constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameZero {
    /// Registers start in an arbitrary state (each gets a fresh variable).
    /// Used by induction and combinational equivalence reasoning.
    Free,
    /// Registers start in their initial values; `Init::Nondet` gets a fresh
    /// variable and `Init::Fn` cones are encoded over frame-0 inputs.
    Init,
}

/// Incremental Tseitin encoder of a netlist's time-frames.
///
/// # Examples
///
/// ```
/// use diam_netlist::{Init, Netlist};
/// use diam_sat::{SolveResult, Solver};
/// use diam_transform::unroll::{FrameZero, Unroller};
///
/// // A register that toggles: can it be 1 at time 1?
/// let mut n = Netlist::new();
/// let r = n.reg("r", Init::Zero);
/// n.set_next(r, !r.lit());
/// let mut solver = Solver::new();
/// let mut u = Unroller::new(&n, FrameZero::Init);
/// let at1 = u.lit_at(&mut solver, r.lit(), 1);
/// assert_eq!(solver.solve_with(&[at1]), SolveResult::Sat);
/// let at0 = u.lit_at(&mut solver, r.lit(), 0);
/// assert_eq!(solver.solve_with(&[at0]), SolveResult::Unsat);
/// ```
#[derive(Debug)]
pub struct Unroller<'a> {
    n: &'a Netlist,
    mode: FrameZero,
    /// `frames[t][g]` = SAT literal of gate `g` at time `t`.
    frames: Vec<Vec<Option<SatLit>>>,
    const_false: Option<SatLit>,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller for `n` with the given frame-0 policy.
    pub fn new(n: &'a Netlist, mode: FrameZero) -> Unroller<'a> {
        Unroller {
            n,
            mode,
            frames: Vec::new(),
            const_false: None,
        }
    }

    /// The netlist being unrolled.
    pub fn netlist(&self) -> &Netlist {
        self.n
    }

    /// A SAT literal that is constant false.
    pub fn false_lit(&mut self, solver: &mut Solver) -> SatLit {
        if let Some(l) = self.const_false {
            return l;
        }
        let l = solver.new_var().positive();
        solver.add_clause([!l]);
        self.const_false = Some(l);
        l
    }

    fn ensure_frame(&mut self, t: usize) {
        while self.frames.len() <= t {
            self.frames.push(vec![None; self.n.num_gates()]);
            diam_obs::counter_add("unroll.frames", 1);
        }
    }

    /// Returns the SAT literal encoding netlist literal `l` at time `t`,
    /// adding Tseitin clauses to `solver` as needed.
    pub fn lit_at(&mut self, solver: &mut Solver, l: Lit, t: usize) -> SatLit {
        let g = self.gate_at(solver, l.gate(), t);
        if l.is_complement() {
            !g
        } else {
            g
        }
    }

    fn gate_at(&mut self, solver: &mut Solver, root: diam_netlist::Gate, t0: usize) -> SatLit {
        self.ensure_frame(t0);
        if let Some(l) = self.frames[t0][root.index()] {
            return l;
        }
        // Iterative encoding: a work stack of (gate, frame). A node is
        // expanded when first visited and emitted when its children are done.
        let mut stack: Vec<(diam_netlist::Gate, usize, bool)> = vec![(root, t0, false)];
        while let Some((g, t, expanded)) = stack.pop() {
            self.ensure_frame(t);
            if self.frames[t][g.index()].is_some() {
                continue;
            }
            match self.n.kind(g) {
                GateKind::Const0 => {
                    let f = self.false_lit(solver);
                    self.frames[t][g.index()] = Some(f);
                }
                GateKind::Input => {
                    let v = solver.new_var().positive();
                    self.frames[t][g.index()] = Some(v);
                }
                GateKind::And(a, b) => {
                    if !expanded {
                        stack.push((g, t, true));
                        stack.push((a.gate(), t, false));
                        stack.push((b.gate(), t, false));
                    } else {
                        let la = self.resolved(a, t);
                        let lb = self.resolved(b, t);
                        let v = solver.new_var().positive();
                        solver.add_clause([!v, la]);
                        solver.add_clause([!v, lb]);
                        solver.add_clause([v, !la, !lb]);
                        self.frames[t][g.index()] = Some(v);
                    }
                }
                GateKind::Reg => {
                    if t == 0 {
                        match self.mode {
                            FrameZero::Free => {
                                let v = solver.new_var().positive();
                                self.frames[0][g.index()] = Some(v);
                            }
                            FrameZero::Init => match self.n.reg_init(g) {
                                Init::Zero => {
                                    let f = self.false_lit(solver);
                                    self.frames[0][g.index()] = Some(f);
                                }
                                Init::One => {
                                    let f = self.false_lit(solver);
                                    self.frames[0][g.index()] = Some(!f);
                                }
                                Init::Nondet => {
                                    let v = solver.new_var().positive();
                                    self.frames[0][g.index()] = Some(v);
                                }
                                Init::Fn(l) => {
                                    if !expanded {
                                        stack.push((g, 0, true));
                                        stack.push((l.gate(), 0, false));
                                    } else {
                                        let enc = self.resolved(l, 0);
                                        self.frames[0][g.index()] = Some(enc);
                                    }
                                }
                            },
                        }
                    } else {
                        let next = self.n.reg_next(g);
                        if !expanded {
                            stack.push((g, t, true));
                            stack.push((next.gate(), t - 1, false));
                        } else {
                            let enc = self.resolved(next, t - 1);
                            self.frames[t][g.index()] = Some(enc);
                        }
                    }
                }
            }
        }
        self.frames[t0][root.index()].expect("root encoded")
    }

    fn resolved(&self, l: Lit, t: usize) -> SatLit {
        let v = self.frames[t][l.gate().index()].expect("child encoded before parent");
        if l.is_complement() {
            !v
        } else {
            v
        }
    }

    /// The SAT literal already assigned to `l` at `t`, if encoded.
    pub fn try_lit_at(&self, l: Lit, t: usize) -> Option<SatLit> {
        let row = self.frames.get(t)?;
        row[l.gate().index()].map(|v| if l.is_complement() { !v } else { v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diam_netlist::{Init, Netlist};
    use diam_sat::SolveResult;

    #[test]
    fn free_mode_leaves_state_unconstrained() {
        let mut n = Netlist::new();
        let r = n.reg("r", Init::Zero);
        n.set_next(r, r.lit());
        let mut solver = Solver::new();
        let mut u = Unroller::new(&n, FrameZero::Free);
        let at0 = u.lit_at(&mut solver, r.lit(), 0);
        // In free mode the register may be 1 at time 0 despite Init::Zero.
        assert_eq!(solver.solve_with(&[at0]), SolveResult::Sat);
    }

    #[test]
    fn init_mode_applies_initial_values() {
        let mut n = Netlist::new();
        let r0 = n.reg("zero", Init::Zero);
        let r1 = n.reg("one", Init::One);
        n.set_next(r0, r0.lit());
        n.set_next(r1, r1.lit());
        let mut solver = Solver::new();
        let mut u = Unroller::new(&n, FrameZero::Init);
        let a = u.lit_at(&mut solver, r0.lit(), 0);
        let b = u.lit_at(&mut solver, r1.lit(), 0);
        assert_eq!(solver.solve_with(&[a]), SolveResult::Unsat);
        assert_eq!(solver.solve_with(&[!b]), SolveResult::Unsat);
    }

    #[test]
    fn fn_init_encodes_cone_over_time_zero_inputs() {
        let mut n = Netlist::new();
        let i = n.input("i");
        let r = n.reg("r", Init::Fn(!i.lit()));
        n.set_next(r, r.lit());
        let mut solver = Solver::new();
        let mut u = Unroller::new(&n, FrameZero::Init);
        let r0 = u.lit_at(&mut solver, r.lit(), 0);
        let i0 = u.lit_at(&mut solver, i.lit(), 0);
        // r at time 0 must equal ¬i at time 0.
        assert_eq!(solver.solve_with(&[r0, i0]), SolveResult::Unsat);
        assert_eq!(solver.solve_with(&[!r0, !i0]), SolveResult::Unsat);
        assert_eq!(solver.solve_with(&[r0, !i0]), SolveResult::Sat);
    }

    #[test]
    fn counter_reaches_three_at_step_three() {
        // 2-bit counter; target: value == 3.
        let mut n = Netlist::new();
        let b0 = n.reg("b0", Init::Zero);
        let b1 = n.reg("b1", Init::Zero);
        let n0 = !b0.lit();
        let n1 = n.xor(b1.lit(), b0.lit());
        n.set_next(b0, n0);
        n.set_next(b1, n1);
        let both = n.and(b0.lit(), b1.lit());
        let mut solver = Solver::new();
        let mut u = Unroller::new(&n, FrameZero::Init);
        for t in 0..3 {
            let l = u.lit_at(&mut solver, both, t);
            assert_eq!(solver.solve_with(&[l]), SolveResult::Unsat, "t={t}");
        }
        let l3 = u.lit_at(&mut solver, both, 3);
        assert_eq!(solver.solve_with(&[l3]), SolveResult::Sat);
    }

    #[test]
    fn shared_logic_is_encoded_once() {
        let mut n = Netlist::new();
        let a = n.input("a").lit();
        let b = n.input("b").lit();
        let x = n.and(a, b);
        let mut solver = Solver::new();
        let mut u = Unroller::new(&n, FrameZero::Free);
        let l1 = u.lit_at(&mut solver, x, 0);
        let vars_before = solver.num_vars();
        let l2 = u.lit_at(&mut solver, x, 0);
        assert_eq!(l1, l2);
        assert_eq!(solver.num_vars(), vars_before);
    }
}

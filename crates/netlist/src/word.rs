//! Word-level construction helpers: multi-bit buses, adders, comparators,
//! muxes, and registered counters, all lowered onto the AIG.
//!
//! These are conveniences for building realistic verification workloads —
//! datapaths, counters with enables and wraps, address comparators — without
//! hand-writing carry chains everywhere.

use crate::{Gate, Init, Lit, Netlist};

/// A little-endian bus of literals (`bits\[0\]` is the LSB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<Lit>,
}

impl Word {
    /// Wraps existing literals (LSB first).
    pub fn from_lits<I: IntoIterator<Item = Lit>>(bits: I) -> Word {
        Word {
            bits: bits.into_iter().collect(),
        }
    }

    /// A constant word of the given width.
    pub fn constant(value: u64, width: usize) -> Word {
        Word {
            bits: (0..width)
                .map(|k| {
                    if (value >> k) & 1 == 1 {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                })
                .collect(),
        }
    }

    /// Fresh primary inputs `name_0 … name_{width-1}`.
    pub fn inputs(n: &mut Netlist, name: &str, width: usize) -> Word {
        Word {
            bits: (0..width)
                .map(|k| n.input(format!("{name}_{k}")).lit())
                .collect(),
        }
    }

    /// Bus width.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> &[Lit] {
        &self.bits
    }

    /// The `k`-th bit.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn bit(&self, k: usize) -> Lit {
        self.bits[k]
    }

    /// Bitwise complement.
    #[must_use]
    pub fn not(&self) -> Word {
        Word {
            bits: self.bits.iter().map(|&b| !b).collect(),
        }
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn and(&self, n: &mut Netlist, rhs: &Word) -> Word {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        Word {
            bits: self
                .bits
                .iter()
                .zip(&rhs.bits)
                .map(|(&a, &b)| n.and(a, b))
                .collect(),
        }
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor(&self, n: &mut Netlist, rhs: &Word) -> Word {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        Word {
            bits: self
                .bits
                .iter()
                .zip(&rhs.bits)
                .map(|(&a, &b)| n.xor(a, b))
                .collect(),
        }
    }

    /// Ripple-carry sum `self + rhs + carry_in`; returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&self, n: &mut Netlist, rhs: &Word, carry_in: Lit) -> (Word, Lit) {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        let mut carry = carry_in;
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&rhs.bits) {
            let ab = n.xor(a, b);
            let sum = n.xor(ab, carry);
            // carry' = (a ∧ b) ∨ (carry ∧ (a ⊕ b))
            let g = n.and(a, b);
            let p = n.and(carry, ab);
            carry = n.or(g, p);
            bits.push(sum);
        }
        (Word { bits }, carry)
    }

    /// `self + 1` when `enable`, else `self`; returns `(next, wrapped)`.
    pub fn increment(&self, n: &mut Netlist, enable: Lit) -> (Word, Lit) {
        let mut carry = enable;
        let mut bits = Vec::with_capacity(self.width());
        for &a in &self.bits {
            bits.push(n.xor(a, carry));
            carry = n.and(a, carry);
        }
        (Word { bits }, carry)
    }

    /// Equality with another word.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq(&self, n: &mut Netlist, rhs: &Word) -> Lit {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        let bits: Vec<Lit> = self
            .bits
            .iter()
            .zip(&rhs.bits)
            .map(|(&a, &b)| n.xnor(a, b))
            .collect();
        n.and_many(bits)
    }

    /// Equality with a constant.
    pub fn eq_const(&self, n: &mut Netlist, value: u64) -> Lit {
        let bits: Vec<Lit> = self
            .bits
            .iter()
            .enumerate()
            .map(|(k, &b)| b.xor_complement((value >> k) & 1 == 0))
            .collect();
        n.and_many(bits)
    }

    /// Unsigned `self < rhs`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lt(&self, n: &mut Netlist, rhs: &Word) -> Lit {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        // Subtract: self + ¬rhs + 1; borrow = ¬carry_out.
        let nr = rhs.not();
        let (_, carry) = self.add(n, &nr, Lit::TRUE);
        !carry
    }

    /// Per-bit mux: `sel ? self : rhs`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux(&self, n: &mut Netlist, sel: Lit, rhs: &Word) -> Word {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        Word {
            bits: self
                .bits
                .iter()
                .zip(&rhs.bits)
                .map(|(&a, &b)| n.mux(sel, a, b))
                .collect(),
        }
    }

    /// OR-reduction of all bits.
    pub fn any(&self, n: &mut Netlist) -> Lit {
        n.or_many(self.bits.clone())
    }

    /// AND-reduction of all bits.
    pub fn all(&self, n: &mut Netlist) -> Lit {
        n.and_many(self.bits.clone())
    }
}

/// A registered word: a bus of registers plus its literal view.
#[derive(Debug, Clone)]
pub struct RegWord {
    /// The underlying registers, LSB first.
    pub regs: Vec<Gate>,
    /// The value as a word.
    pub value: Word,
}

impl RegWord {
    /// Creates `width` registers named `name_k`, all with the same initial
    /// value. Connect them with [`RegWord::set_next`].
    pub fn new(n: &mut Netlist, name: &str, width: usize, init: Init) -> RegWord {
        let regs: Vec<Gate> = (0..width)
            .map(|k| n.reg(format!("{name}_{k}"), init))
            .collect();
        let value = Word::from_lits(regs.iter().map(|r| r.lit()));
        RegWord { regs, value }
    }

    /// Connects the next-state functions from a word of matching width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_next(&self, n: &mut Netlist, next: &Word) {
        assert_eq!(self.regs.len(), next.width(), "width mismatch");
        for (&r, &b) in self.regs.iter().zip(next.bits()) {
            n.set_next(r, b);
        }
    }
}

/// A registered up-counter with enable and an optional modulus wrap.
/// Returns the counter state; the wrap happens when the value reaches
/// `modulus − 1` and `enable` holds.
pub fn mod_counter(
    n: &mut Netlist,
    name: &str,
    width: usize,
    modulus: u64,
    enable: Lit,
) -> RegWord {
    let rw = RegWord::new(n, name, width, Init::Zero);
    let at_top = rw.value.eq_const(n, modulus - 1);
    let wrap = n.and(enable, at_top);
    let (inc, _) = rw.value.increment(n, enable);
    let zero = Word::constant(0, width);
    let next = zero.mux(n, wrap, &inc);
    rw.set_next(n, &next);
    rw
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the math here
mod tests {
    use super::*;
    use crate::sim::{simulate, SplitMix64, Stimulus};

    /// Evaluates a word's simulated value (trace 0) at time `t`.
    fn word_value(trace: &crate::sim::Trace, w: &Word, t: usize) -> u64 {
        w.bits()
            .iter()
            .enumerate()
            .map(|(k, &b)| u64::from(trace.value(b, t, 0)) << k)
            .sum()
    }

    #[test]
    fn adder_matches_machine_arithmetic() {
        let mut rng = SplitMix64::new(1);
        let mut n = Netlist::new();
        let a = Word::inputs(&mut n, "a", 8);
        let b = Word::inputs(&mut n, "b", 8);
        let (sum, carry) = a.add(&mut n, &b, Lit::FALSE);
        n.add_target(carry, "cout");
        let stim = Stimulus::random(&n, 1, &mut rng);
        let tr = simulate(&n, &stim);
        for lane in 0..8 {
            let va: u64 = (0..8)
                .map(|k| u64::from(tr.value(a.bit(k), 0, lane)) << k)
                .sum();
            let vb: u64 = (0..8)
                .map(|k| u64::from(tr.value(b.bit(k), 0, lane)) << k)
                .sum();
            let vs: u64 = (0..8)
                .map(|k| u64::from(tr.value(sum.bit(k), 0, lane)) << k)
                .sum();
            assert_eq!(vs, (va + vb) & 0xff, "lane {lane}");
            assert_eq!(
                tr.value(carry, 0, lane),
                va + vb > 0xff,
                "carry lane {lane}"
            );
        }
    }

    #[test]
    fn comparator_matches() {
        let mut rng = SplitMix64::new(2);
        let mut n = Netlist::new();
        let a = Word::inputs(&mut n, "a", 6);
        let b = Word::inputs(&mut n, "b", 6);
        let lt = a.lt(&mut n, &b);
        let eq = a.eq(&mut n, &b);
        n.add_target(lt, "lt");
        let stim = Stimulus::random(&n, 1, &mut rng);
        let tr = simulate(&n, &stim);
        for lane in 0..32 {
            let va: u64 = (0..6)
                .map(|k| u64::from(tr.value(a.bit(k), 0, lane)) << k)
                .sum();
            let vb: u64 = (0..6)
                .map(|k| u64::from(tr.value(b.bit(k), 0, lane)) << k)
                .sum();
            assert_eq!(tr.value(lt, 0, lane), va < vb, "lt lane {lane}");
            assert_eq!(tr.value(eq, 0, lane), va == vb, "eq lane {lane}");
        }
    }

    #[test]
    fn eq_const_matches() {
        let mut n = Netlist::new();
        let a = Word::inputs(&mut n, "a", 4);
        let is5 = a.eq_const(&mut n, 5);
        n.add_target(is5, "t");
        // Drive all 16 values in parallel lanes.
        let mut stim = Stimulus::zeros(&n, 1);
        for k in 0..4 {
            let mut w = 0u64;
            for v in 0..16u64 {
                if (v >> k) & 1 == 1 {
                    w |= 1 << v;
                }
            }
            stim.inputs[0][k] = w;
        }
        let tr = simulate(&n, &stim);
        for v in 0..16 {
            assert_eq!(tr.value(is5, 0, v), v == 5, "value {v}");
        }
    }

    #[test]
    fn mod_counter_wraps() {
        let mut n = Netlist::new();
        let c = mod_counter(&mut n, "c", 3, 6, Lit::TRUE);
        n.add_target(c.value.bit(2), "t");
        let tr = simulate(&n, &Stimulus::zeros(&n, 14));
        for t in 0..14 {
            assert_eq!(word_value(&tr, &c.value, t), (t as u64) % 6, "time {t}");
        }
    }

    #[test]
    fn increment_with_enable_holds() {
        let mut n = Netlist::new();
        let en = n.input("en");
        let c = RegWord::new(&mut n, "c", 4, Init::Zero);
        let (inc, _) = c.value.increment(&mut n, en.lit());
        c.set_next(&mut n, &inc);
        n.add_target(c.value.bit(0), "t");
        // Enable on odd steps only.
        let stim = Stimulus {
            inputs: (0..8)
                .map(|t| vec![if t % 2 == 1 { !0u64 } else { 0 }])
                .collect(),
            nondet_init: vec![0; 4],
        };
        let tr = simulate(&n, &stim);
        let expect = [0u64, 0, 1, 1, 2, 2, 3, 3];
        for (t, &e) in expect.iter().enumerate() {
            assert_eq!(word_value(&tr, &c.value, t), e, "time {t}");
        }
    }

    #[test]
    fn increment_reports_wrap() {
        let mut n = Netlist::new();
        let a = Word::inputs(&mut n, "a", 3);
        let (_, wrapped) = a.increment(&mut n, Lit::TRUE);
        n.add_target(wrapped, "w");
        // Drive all 8 values in parallel lanes: wrap only at 7.
        let mut stim = Stimulus::zeros(&n, 1);
        for k in 0..3 {
            let mut w = 0u64;
            for v in 0..8u64 {
                if (v >> k) & 1 == 1 {
                    w |= 1 << v;
                }
            }
            stim.inputs[0][k] = w;
        }
        let tr = simulate(&n, &stim);
        for v in 0..8 {
            assert_eq!(tr.value(wrapped, 0, v), v == 7, "value {v}");
        }
    }

    #[test]
    fn single_bit_word_ops() {
        let mut n = Netlist::new();
        let a = Word::inputs(&mut n, "a", 1);
        let b = Word::inputs(&mut n, "b", 1);
        let lt = a.lt(&mut n, &b);
        let eq = a.eq(&mut n, &b);
        n.add_target(lt, "lt");
        let mut stim = Stimulus::zeros(&n, 1);
        stim.inputs[0][0] = 0b0011; // a over 4 lanes: 1,1,0,0
        stim.inputs[0][1] = 0b0101; // b: 1,0,1,0
        let tr = simulate(&n, &stim);
        let expect_lt = [false, false, true, false];
        let expect_eq = [true, false, false, true];
        for lane in 0..4 {
            assert_eq!(tr.value(lt, 0, lane), expect_lt[lane], "lt lane {lane}");
            assert_eq!(tr.value(eq, 0, lane), expect_eq[lane], "eq lane {lane}");
        }
    }

    #[test]
    fn constant_word_bits() {
        let w = Word::constant(0b1010, 4);
        assert_eq!(w.bit(0), Lit::FALSE);
        assert_eq!(w.bit(1), Lit::TRUE);
        assert_eq!(w.bit(2), Lit::FALSE);
        assert_eq!(w.bit(3), Lit::TRUE);
    }

    #[test]
    fn mux_and_reductions() {
        let mut rng = SplitMix64::new(3);
        let mut n = Netlist::new();
        let s = n.input("s").lit();
        let a = Word::inputs(&mut n, "a", 5);
        let b = Word::inputs(&mut n, "b", 5);
        let m = a.mux(&mut n, s, &b);
        let any = m.any(&mut n);
        let all = m.all(&mut n);
        n.add_target(any, "any");
        let stim = Stimulus::random(&n, 1, &mut rng);
        let tr = simulate(&n, &stim);
        for lane in 0..16 {
            let sel = tr.value(s, 0, lane);
            let src = if sel { &a } else { &b };
            let v: u64 = (0..5)
                .map(|k| u64::from(tr.value(src.bit(k), 0, lane)) << k)
                .sum();
            assert_eq!(tr.value(any, 0, lane), v != 0);
            assert_eq!(tr.value(all, 0, lane), v == 0b11111);
        }
    }
}

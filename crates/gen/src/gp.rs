//! The phase-abstracted IBM Gigahertz Processor suite of Table 2, as
//! structural profiles.
//!
//! The original netlists are proprietary; the paper's table rows (register
//! classes per column, `|T′|/|T|`, average `d̂`) are the only observable the
//! experiment consumes, and are transcribed here verbatim. The designs are
//! the *phase-abstracted* versions (the paper applies its phase-abstraction
//! engine \[10\] before the table's "Original" column) — highly pipelined and
//! memory-rich, with a sprinkling of constant registers, which is exactly
//! the mix the profile builder synthesizes.

use crate::profile::{build, DesignProfile};
use diam_netlist::Netlist;

/// One profile row: `(name, cc, ac, mc, gc, |T|, T'_orig, avg_orig,
/// T'_com, avg_com, T'_ret, avg_ret)`.
type Row = (
    &'static str,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    f32,
    usize,
    f32,
    usize,
    f32,
);

/// Table 2 of the paper, verbatim.
pub const TABLE2: &[Row] = &[
    ("CP_RAS", 0, 279, 66, 315, 2, 0, 0.0, 0, 0.0, 0, 0.0),
    ("CLB_CNTL", 0, 29, 2, 19, 2, 0, 0.0, 0, 0.0, 0, 0.0),
    ("CR_RAS", 0, 96, 6, 329, 1, 0, 0.0, 0, 0.0, 0, 0.0),
    ("D_DASA", 0, 16, 81, 18, 2, 1, 35.0, 2, 27.0, 2, 28.0),
    ("D_DCLA", 0, 382, 1, 754, 2, 0, 0.0, 0, 0.0, 0, 0.0),
    ("D_DUDD", 0, 30, 28, 71, 22, 4, 9.2, 4, 10.8, 7, 11.0),
    ("I_IBBQn", 0, 623, 1488, 0, 15, 15, 4.7, 15, 4.7, 15, 4.7),
    ("I_IFAR", 0, 303, 11, 99, 2, 0, 0.0, 0, 0.0, 0, 0.0),
    ("I_IFPF", 11, 893, 44, 598, 1, 0, 0.0, 0, 0.0, 0, 0.0),
    ("L3_SNP1", 25, 529, 39, 82, 5, 0, 0.0, 0, 0.0, 1, 1.0),
    ("L_EMQn", 5, 146, 6, 66, 1, 0, 0.0, 1, 1.0, 1, 1.0),
    ("L_EXEC", 12, 421, 0, 102, 2, 0, 0.0, 0, 0.0, 0, 0.0),
    ("L_FLUSHn", 6, 198, 0, 4, 7, 7, 3.7, 7, 3.7, 7, 4.0),
    ("L_INTRo", 14, 143, 12, 5, 30, 30, 3.8, 30, 3.8, 30, 3.6),
    ("L_LMQ0", 28, 690, 4, 133, 16, 0, 0.0, 0, 0.0, 0, 0.0),
    ("L_LRU", 0, 142, 20, 75, 12, 0, 0.0, 12, 15.0, 12, 15.0),
    ("L_PFQ0", 14, 1936, 17, 84, 67, 1, 1.0, 1, 1.0, 1, 1.0),
    ("L_PNTRn", 3, 228, 10, 11, 31, 23, 2.0, 23, 2.0, 23, 4.0),
    ("L_PRQn", 34, 366, 106, 265, 10, 10, 15.2, 10, 15.2, 10, 8.0),
    ("L_SLB", 3, 135, 6, 27, 3, 2, 1.0, 2, 1.0, 2, 1.0),
    ("L_TBWKn", 0, 202, 117, 14, 21, 0, 0.0, 1, 1.0, 1, 1.0),
    ("M_CIU", 0, 343, 10, 424, 6, 0, 0.0, 0, 0.0, 6, 1.0),
    ("SIDECAR4", 3, 109, 32, 455, 1, 0, 0.0, 0, 0.0, 0, 0.0),
    ("S_SCU1", 1, 232, 4, 136, 3, 0, 0.0, 0, 0.0, 2, 2.0),
    ("V_CACH", 5, 94, 15, 59, 1, 0, 0.0, 0, 0.0, 1, 1.0),
    ("V_DIR", 6, 91, 13, 68, 2, 0, 0.0, 0, 0.0, 2, 8.0),
    ("V_SNPM", 65, 846, 134, 376, 2, 1, 2.0, 2, 1.5, 2, 1.5),
    ("W_GAR", 0, 159, 0, 83, 7, 1, 1.0, 1, 1.0, 1, 1.0),
    ("W_SFA", 0, 22, 0, 42, 8, 0, 0.0, 0, 0.0, 0, 0.0),
];

/// Converts a table row into a [`DesignProfile`].
pub fn profile(row: &Row) -> DesignProfile {
    DesignProfile {
        name: row.0,
        cc: row.1,
        ac: row.2,
        mc: row.3,
        gc: row.4,
        targets: row.5,
        useful_orig: row.6,
        useful_com: row.8,
        useful_ret: row.10,
        avg: [row.7, row.9, row.11],
    }
}

/// All Table 2 profiles.
pub fn profiles() -> Vec<DesignProfile> {
    TABLE2.iter().map(profile).collect()
}

/// Builds the full synthetic suite (deterministic for a given seed).
pub fn suite(seed: u64) -> Vec<(DesignProfile, Netlist)> {
    profiles()
        .into_iter()
        .map(|p| {
            let n = build(&p, seed);
            (p, n)
        })
        .collect()
}

/// The paper's Σ row for Table 2: `(cc, ac, mc, gc, t_orig, t_com, t_ret,
/// total_targets)`.
pub const TABLE2_SIGMA: (usize, usize, usize, usize, usize, usize, usize, usize) =
    (235, 9683, 2272, 4714, 95, 111, 126, 284);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_data_sums_match_paper_sigma() {
        let (mut cc, mut ac, mut mc, mut gc) = (0, 0, 0, 0);
        let (mut t0, mut t1, mut t2, mut tt) = (0, 0, 0, 0);
        for r in TABLE2 {
            cc += r.1;
            ac += r.2;
            mc += r.3;
            gc += r.4;
            tt += r.5;
            t0 += r.6;
            t1 += r.8;
            t2 += r.10;
        }
        assert_eq!(
            (cc, ac, mc, gc, t0, t1, t2, tt),
            TABLE2_SIGMA,
            "transcribed table rows disagree with the paper's Σ row"
        );
    }

    #[test]
    fn every_profile_builds_and_validates() {
        for p in profiles() {
            let n = build(&p, 7);
            n.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(n.targets().len(), p.targets, "{}", p.name);
        }
    }
}

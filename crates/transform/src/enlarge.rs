//! Target enlargement (Section 3.4 of the paper, Theorem 4).
//!
//! A `k`-step enlarged target `t'` characterizes the states that can hit the
//! original target `t` in exactly `k` steps but not fewer: preimages are
//! computed symbolically with BDDs (inputs existentially quantified),
//! *inductively simplified* by subtracting the states that hit earlier, and
//! the result is synthesized back **structurally** into the netlist — the
//! representation the paper recommends for synergy with SAT-based analysis
//! and cone-of-influence reduction.
//!
//! Theorem 4: if `d(t')` bounds the diameter of the enlarged target, the
//! original target is hittable within `d(t') + k` steps, if at all. (The
//! module documentation of [`crate`] discusses why the converse —
//! deassertion behaviour — is *not* preserved, per the paper's mod-c counter
//! example.)

use crate::bridge::{bdd_to_netlist, cone_to_bdd};
use diam_bdd::{Bdd, Manager};
use diam_netlist::analysis::coi;
use diam_netlist::{Gate, Lit, Netlist};
use std::collections::HashMap;
use std::fmt;

/// Options for [`enlarge`].
#[derive(Debug, Clone)]
pub struct EnlargeOptions {
    /// Number of preimage steps `k`.
    pub k: u32,
    /// Abort when the BDD manager exceeds this many nodes.
    pub max_bdd_nodes: usize,
}

impl Default for EnlargeOptions {
    fn default() -> EnlargeOptions {
        EnlargeOptions {
            k: 1,
            max_bdd_nodes: 1_000_000,
        }
    }
}

/// Error returned by [`enlarge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnlargeError {
    /// BDD size exceeded [`EnlargeOptions::max_bdd_nodes`].
    BddBlowup { nodes: usize },
    /// The target index does not exist.
    NoSuchTarget { index: usize },
}

impl fmt::Display for EnlargeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnlargeError::BddBlowup { nodes } => {
                write!(f, "bdd blow-up during preimage computation ({nodes} nodes)")
            }
            EnlargeError::NoSuchTarget { index } => write!(f, "no target with index {index}"),
        }
    }
}

impl std::error::Error for EnlargeError {}

/// The result of enlarging one target.
#[derive(Debug, Clone)]
pub struct Enlarged {
    /// The netlist with the enlarged target appended as target `index`
    /// (replacing the original target literal; the original gates remain).
    pub netlist: Netlist,
    /// The enlargement depth `k`: bounds back-translate as `d̂ + k`.
    pub k: u32,
    /// Index of the (replaced) target.
    pub index: usize,
    /// True when the enlarged target is the constant false — every state
    /// that can hit the target at all hits it in fewer than `k` steps, so a
    /// plain BMC of depth `k` is already complete.
    pub collapsed: bool,
}

/// Computes the `k`-step enlarged target for target `index` of `n`.
///
/// The returned netlist is `n` plus the synthesized characteristic function
/// of the enlarged state set; target `index` is redirected onto it. Bounds
/// computed for the new target back-translate by `+k` (Theorem 4).
///
/// # Errors
///
/// Fails if `index` is out of range or the BDDs exceed the node budget.
///
/// # Examples
///
/// ```
/// use diam_netlist::{Init, Netlist};
/// use diam_transform::enlarge::{enlarge, EnlargeOptions};
///
/// // 3-bit counter; target: value == 5.
/// let mut n = Netlist::new();
/// let b: Vec<_> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
/// let c0 = b[0].lit();
/// let carry1 = c0;
/// let n1 = n.xor(b[1].lit(), carry1);
/// let carry2 = n.and(b[1].lit(), carry1);
/// let n2 = n.xor(b[2].lit(), carry2);
/// n.set_next(b[0], !c0);
/// n.set_next(b[1], n1);
/// n.set_next(b[2], n2);
/// let is5 = {
///     let t0 = n.and(b[0].lit(), !b[1].lit());
///     n.and(t0, b[2].lit())
/// };
/// n.add_target(is5, "value_is_5");
/// let e = enlarge(&n, 0, &EnlargeOptions { k: 2, ..Default::default() })?;
/// // The enlarged target characterizes {3}: hit exactly 2 steps before 5.
/// assert!(!e.collapsed);
/// # Ok::<(), diam_transform::enlarge::EnlargeError>(())
/// ```
pub fn enlarge(n: &Netlist, index: usize, opts: &EnlargeOptions) -> Result<Enlarged, EnlargeError> {
    // Observability: the pass framework wraps this engine in the unified
    // `pass.apply` span (see `crate::pass`); no ad-hoc span here.
    let target = n
        .targets()
        .get(index)
        .ok_or(EnlargeError::NoSuchTarget { index })?
        .clone();

    // Variable numbering over the target's cone: registers then inputs.
    let cone = coi(n, [target.lit]);
    let mut var_of_gate: HashMap<Gate, u32> = HashMap::new();
    for (k, &r) in cone.regs.iter().enumerate() {
        var_of_gate.insert(r, k as u32);
    }
    let input_base = cone.regs.len() as u32;
    for (k, &i) in cone.inputs.iter().enumerate() {
        var_of_gate.insert(i, input_base + k as u32);
    }
    let input_vars: Vec<u32> = (0..cone.inputs.len() as u32)
        .map(|k| input_base + k)
        .collect();
    let var_of = |g: Gate| var_of_gate.get(&g).copied();

    let mut m = Manager::new();
    let check = |m: &Manager| -> Result<(), EnlargeError> {
        if m.num_nodes() > opts.max_bdd_nodes {
            Err(EnlargeError::BddBlowup {
                nodes: m.num_nodes(),
            })
        } else {
            Ok(())
        }
    };

    // Next-state functions of the cone registers.
    let mut delta: HashMap<u32, Bdd> = HashMap::new();
    for (k, &r) in cone.regs.iter().enumerate() {
        let f = cone_to_bdd(&mut m, n, n.reg_next(r), &var_of);
        delta.insert(k as u32, f);
        check(&m)?;
    }
    // B0: states (after quantifying inputs) from which the target is hit
    // immediately.
    let t_bdd = cone_to_bdd(&mut m, n, target.lit, &var_of);
    let hit_now = m.exists(t_bdd, &input_vars);
    check(&m)?;

    // Inductively simplified preimages.
    let mut frontier = hit_now;
    let mut covered = hit_now;
    for _ in 0..opts.k {
        let composed = m.compose(frontier, &delta);
        let pre = m.exists(composed, &input_vars);
        frontier = m.diff(pre, covered);
        covered = m.or(covered, frontier);
        check(&m)?;
    }

    // Structural synthesis over the current-state register literals.
    let mut out = n.clone();
    let reg_lits: Vec<Lit> = cone.regs.iter().map(|&r| r.lit()).collect();
    let lit_of_var = |v: u32| reg_lits[v as usize];
    let t_new = bdd_to_netlist(&m, frontier, &mut out, &lit_of_var);
    let collapsed = t_new == Lit::FALSE;
    // Redirect the target.
    let name = format!("{}_enl{}", target.name, opts.k);
    replace_target(&mut out, index, t_new, name);
    Ok(Enlarged {
        netlist: out,
        k: opts.k,
        index,
        collapsed,
    })
}

fn replace_target(n: &mut Netlist, index: usize, lit: Lit, name: String) {
    // Netlist has no in-place target mutation; rebuild the target list.
    let targets: Vec<(Lit, String)> = n
        .targets()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i == index {
                (lit, name.clone())
            } else {
                (t.lit, t.name.clone())
            }
        })
        .collect();
    n.clear_targets();
    for (l, nm) in targets {
        n.add_target(l, nm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diam_netlist::sim::{simulate, Stimulus};
    use diam_netlist::Init;

    /// Mod-8 counter with a `value == target_value` target.
    fn counter(target_value: u8) -> Netlist {
        let mut n = Netlist::new();
        let b: Vec<Gate> = (0..3).map(|k| n.reg(format!("b{k}"), Init::Zero)).collect();
        let carry1 = b[0].lit();
        let n1 = n.xor(b[1].lit(), carry1);
        let carry2 = n.and(b[1].lit(), carry1);
        let n2 = n.xor(b[2].lit(), carry2);
        n.set_next(b[0], !b[0].lit());
        n.set_next(b[1], n1);
        n.set_next(b[2], n2);
        let bits: Vec<Lit> = (0..3)
            .map(|k| b[k].lit().xor_complement(target_value >> k & 1 == 0))
            .collect();
        let t = n.and_many(bits);
        n.add_target(t, format!("value_is_{target_value}"));
        n
    }

    /// Earliest time the target is asserted under zero stimulus, up to a
    /// horizon.
    fn earliest_hit(n: &Netlist, horizon: usize) -> Option<usize> {
        let trace = simulate(n, &Stimulus::zeros(n, horizon));
        let t = n.targets()[0].lit;
        (0..horizon).find(|&time| trace.value(t, time, 0))
    }

    #[test]
    fn enlargement_shifts_earliest_hit_by_k() {
        for k in 1..=3u32 {
            let n = counter(5);
            let e = enlarge(
                &n,
                0,
                &EnlargeOptions {
                    k,
                    ..Default::default()
                },
            )
            .unwrap();
            let orig = earliest_hit(&n, 16).unwrap();
            let enl = earliest_hit(&e.netlist, 16).unwrap();
            assert_eq!(orig, 5);
            assert_eq!(enl + k as usize, orig, "k={k}");
        }
    }

    #[test]
    fn collapsed_when_everything_hits_earlier() {
        // Target: counter value == 0 (hit at time 0 from the only initial
        // state; the 1-step preimage is {7}, not collapsed — but enlarging a
        // constant-true-from-anywhere target collapses).
        let mut n = Netlist::new();
        let r = n.reg("r", Init::Zero);
        n.set_next(r, r.lit());
        // Target is constant true: every state hits immediately.
        n.add_target(Lit::TRUE, "always");
        let e = enlarge(&n, 0, &EnlargeOptions::default()).unwrap();
        assert!(e.collapsed);
    }

    #[test]
    fn input_quantification_in_preimage() {
        // Target hits when input-controlled mux selects a register. The
        // preimage must existentially quantify the input.
        let mut n = Netlist::new();
        let i = n.input("i").lit();
        let r = n.reg("r", Init::Zero);
        let d = n.input("d").lit();
        n.set_next(r, d);
        let t = n.and(i, r.lit());
        n.add_target(t, "t");
        let e = enlarge(
            &n,
            0,
            &EnlargeOptions {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Enlarged target: states from which some input makes r true next
        // and the target not already hittable — ¬r (r can be loaded with 1).
        assert!(!e.collapsed);
        let t_new = e.netlist.targets()[0].lit;
        // In the all-zero trace r stays 0, so ¬r holds at time 0.
        let trace = simulate(&e.netlist, &Stimulus::zeros(&e.netlist, 2));
        assert!(trace.value(t_new, 0, 0));
    }

    #[test]
    fn bad_index_is_rejected() {
        let n = counter(1);
        assert!(matches!(
            enlarge(&n, 7, &EnlargeOptions::default()),
            Err(EnlargeError::NoSuchTarget { index: 7 })
        ));
    }

    #[test]
    fn other_targets_are_preserved() {
        let mut n = counter(5);
        let extra = n.regs()[0].lit();
        n.add_target(extra, "bit0");
        let e = enlarge(&n, 0, &EnlargeOptions::default()).unwrap();
        assert_eq!(e.netlist.targets().len(), 2);
        assert_eq!(e.netlist.targets()[1].name, "bit0");
        assert_eq!(e.netlist.targets()[1].lit, extra);
    }
}

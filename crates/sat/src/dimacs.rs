//! DIMACS CNF interchange, so the solver can be exercised against standard
//! benchmark instances and its inputs can be exported for cross-checking
//! with other solvers.

use crate::{Lit, Solver, Var};
use std::fmt;
use std::io::{BufRead, Write};

/// Error raised by the DIMACS reader.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input.
    Parse(String),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "dimacs i/o error: {e}"),
            DimacsError::Parse(m) => write!(f, "dimacs parse error: {m}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<std::io::Error> for DimacsError {
    fn from(e: std::io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// A CNF formula in memory: variable count plus clauses of non-zero DIMACS
/// literals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses; literal `v` is DIMACS-style (±1-based).
    pub clauses: Vec<Vec<i64>>,
}

impl Cnf {
    /// Loads the formula into a fresh solver; returns the solver and the
    /// variables (index `i` = DIMACS variable `i + 1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| s.new_var()).collect();
        for clause in &self.clauses {
            s.add_clause(clause.iter().map(|&l| {
                let v = vars[(l.unsigned_abs() as usize) - 1];
                v.lit(l > 0)
            }));
        }
        (s, vars)
    }
}

/// Parses a DIMACS CNF file.
///
/// # Errors
///
/// Fails on I/O errors, a missing/garbled `p cnf` header, out-of-range
/// variables, or clauses not terminated by `0`.
pub fn read<R: BufRead>(reader: R) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::default();
    let mut header_seen = false;
    let mut current: Vec<i64> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        if let Some(rest) = t.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || fields[0] != "cnf" {
                return Err(DimacsError::Parse("bad p-line".into()));
            }
            cnf.num_vars = fields[1]
                .parse()
                .map_err(|_| DimacsError::Parse("bad variable count".into()))?;
            header_seen = true;
            continue;
        }
        if !header_seen {
            return Err(DimacsError::Parse("clause before p-line".into()));
        }
        for tok in t.split_whitespace() {
            let l: i64 = tok
                .parse()
                .map_err(|_| DimacsError::Parse(format!("bad literal {tok:?}")))?;
            if l == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                if l.unsigned_abs() as usize > cnf.num_vars {
                    return Err(DimacsError::Parse(format!("variable {l} out of range")));
                }
                current.push(l);
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::Parse("unterminated final clause".into()));
    }
    Ok(cnf)
}

/// Writes a formula in DIMACS CNF format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write<W: Write>(cnf: &Cnf, mut w: W) -> Result<(), DimacsError> {
    writeln!(w, "p cnf {} {}", cnf.num_vars, cnf.clauses.len())?;
    for clause in &cnf.clauses {
        for &l in clause {
            write!(w, "{l} ")?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

/// Converts DIMACS-style literals to solver literals given the variable
/// table returned by [`Cnf::into_solver`].
pub fn to_lit(vars: &[Var], dimacs: i64) -> Lit {
    vars[(dimacs.unsigned_abs() as usize) - 1].lit(dimacs > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_and_solves() {
        let text = "c a comment\np cnf 3 4\n1 2 0\n-1 2 0\n-2 3 0\n-2 -3 0\n";
        let cnf = read(std::io::Cursor::new(text)).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 4);
        let (mut s, _) = cnf.into_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn round_trips() {
        let cnf = Cnf {
            num_vars: 4,
            clauses: vec![vec![1, -2], vec![3, 4, -1], vec![2]],
        };
        let mut buf = Vec::new();
        write(&cnf, &mut buf).unwrap();
        let back = read(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read(std::io::Cursor::new("p cnf x y\n")).is_err());
        assert!(read(std::io::Cursor::new("1 2 0\n")).is_err());
        assert!(read(std::io::Cursor::new("p cnf 1 1\n2 0\n")).is_err());
        assert!(read(std::io::Cursor::new("p cnf 1 1\n1\n")).is_err());
    }

    #[test]
    fn multiline_clauses_are_accepted() {
        let text = "p cnf 2 1\n1\n2 0\n";
        let cnf = read(std::io::Cursor::new(text)).unwrap();
        assert_eq!(cnf.clauses, vec![vec![1, 2]]);
    }
}
